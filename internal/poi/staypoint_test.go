package poi

import (
	"testing"
	"time"

	"locwatch/internal/geo"
	"locwatch/internal/trace"
)

func TestStayPointExtractorValidation(t *testing.T) {
	emit := func(StayPoint) {}
	if _, err := NewStayPointExtractor(Params{Radius: -1, MinVisit: time.Minute}, emit); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := NewStayPointExtractor(DefaultParams(), nil); err == nil {
		t.Fatal("nil emit accepted")
	}
}

func TestStayPointExtractorBasic(t *testing.T) {
	home := origin
	work := placeAt(90, 3000)
	b := newBuilder(home, time.Second, 31).
		stay(20*time.Minute, 5).
		walk(work, 1.4).
		stay(20*time.Minute, 5)
	stays, err := ExtractStayPoints(b.source(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 2 {
		t.Fatalf("extracted %d stays, want 2", len(stays))
	}
	if geo.Distance(stays[0].Pos, home) > 30 || geo.Distance(stays[1].Pos, work) > 30 {
		t.Error("stay centroids off")
	}
}

func TestStayPointExtractorAgreesWithBufferOnCleanTrace(t *testing.T) {
	// On a clean trace both extractors should find the same places;
	// this is the ablation's sanity anchor.
	b := newBuilder(origin, time.Second, 32)
	for i := 0; i < 4; i++ {
		b.walk(placeAt(float64(i*90), 2500), 1.4).stay(25*time.Minute, 5)
	}
	buffer, err := Extract(b.source(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ExtractStayPoints(trace.NewSliceSource(b.pts), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(buffer) != len(baseline) {
		t.Fatalf("buffer found %d, baseline %d", len(buffer), len(baseline))
	}
	for i := range buffer {
		if geo.Distance(buffer[i].Pos, baseline[i].Pos) > 60 {
			t.Errorf("stay %d: extractors disagree by %v m", i, geo.Distance(buffer[i].Pos, baseline[i].Pos))
		}
	}
}

func TestStayPointExtractorShortStopIgnored(t *testing.T) {
	b := newBuilder(origin, time.Second, 33).
		walk(placeAt(90, 1000), 1.4).
		stay(4*time.Minute, 5).
		walk(placeAt(90, 2000), 1.4)
	stays, err := ExtractStayPoints(b.source(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 0 {
		t.Fatalf("short stop became a stay: %v", stays)
	}
}

func TestStayPointExtractorGapSplits(t *testing.T) {
	b := newBuilder(origin, time.Second, 34).
		stay(20*time.Minute, 5).
		gap(13*time.Hour).
		stay(20*time.Minute, 5)
	stays, err := ExtractStayPoints(b.source(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 2 {
		t.Fatalf("extracted %d stays, want 2", len(stays))
	}
}

func TestStayPointExtractorOutOfOrder(t *testing.T) {
	ex, err := NewStayPointExtractor(DefaultParams(), func(StayPoint) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Feed(trace.Point{Pos: origin, T: start}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Feed(trace.Point{Pos: origin, T: start.Add(-time.Minute)}); err == nil {
		t.Fatal("out-of-order accepted")
	}
}

func TestStayPointExtractorTrailingFlush(t *testing.T) {
	b := newBuilder(origin, time.Second, 35).stay(15*time.Minute, 5)
	stays, err := ExtractStayPoints(b.source(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != 1 {
		t.Fatalf("trailing stay not flushed: %d", len(stays))
	}
}
