// Package privlog is locwatch's categorized, privacy-scrubbed error
// and logging layer. The paper's threat model is raw location data
// escaping an app's boundary through side channels — logs, error
// strings, debug output — so this repository holds its own diagnostics
// to the standard it measures: nothing that leaves the process through
// privlog carries a raw coordinate.
//
// Two halves, one contract:
//
//   - Scrubbing. Scrub and friends redact location-bearing values to
//     precision-bounded forms (~1.1 km by default, the granularity
//     degradation Narain & Noubir treat as a sanitizer). ScrubArgs
//     walks a formatting argument list and replaces every geo.LatLon,
//     geo.BoundingBox, trace.Point (and anything implementing
//     LocationScrubber) with its redacted rendering — so even a caller
//     that forgets to scrub cannot push a raw coordinate through a
//     privlog formatting function.
//   - Categorized errors. New/Newf build errors carrying a component
//     and a Category (config, parse, io, network, sim, internal), with
//     optional key/value context; context values pass through Scrub.
//     The result unwraps normally, so errors.Is/As keep working (the
//     package re-exports them to keep a single errors import).
//
// The privtaint analyzer (internal/lint) recognizes this package as a
// taint boundary: values passed into privlog are considered scrubbed,
// and values returned from it are clean. That static contract is sound
// precisely because the runtime half scrubs unconditionally.
package privlog

import (
	"errors"
	"fmt"
	"strings"
)

// Category classifies an error or log line for triage and for the
// aggregate error counters an ops layer may keep. The zero value is
// CategoryInternal.
type Category int

const (
	// CategoryInternal is the default: a bug or invariant violation.
	CategoryInternal Category = iota
	// CategoryConfig marks invalid user-supplied configuration.
	CategoryConfig
	// CategoryParse marks malformed external input (PLT files,
	// dumpsys text, market pages).
	CategoryParse
	// CategoryIO marks file-system and stream failures.
	CategoryIO
	// CategoryNetwork marks socket/HTTP failures.
	CategoryNetwork
	// CategorySim marks simulation-pipeline failures (trace
	// generation, extraction, detection).
	CategorySim

	numCategories // count sentinel — not a real member
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CategoryInternal:
		return "internal"
	case CategoryConfig:
		return "config"
	case CategoryParse:
		return "parse"
	case CategoryIO:
		return "io"
	case CategoryNetwork:
		return "network"
	case CategorySim:
		return "sim"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Error is a categorized, scrubbed error. Build one with New or Newf;
// the zero value is not meaningful.
type Error struct {
	category  Category
	component string
	msg       string
	err       error // wrapped cause, may be nil
	context   []kv  // scrubbed key/value pairs, in attachment order
}

type kv struct {
	key string
	val string // already scrubbed at attachment time
}

// Error implements the error interface. Context renders as a trailing
// bracketed list so the primary message stays grep-friendly.
func (e *Error) Error() string {
	var b strings.Builder
	if e.component != "" {
		b.WriteString(e.component)
		b.WriteString(": ")
	}
	b.WriteString(e.msg)
	if e.err != nil {
		if e.msg != "" {
			b.WriteString(": ")
		}
		b.WriteString(e.err.Error())
	}
	b.WriteString(" [")
	b.WriteString(e.category.String())
	for _, c := range e.context {
		b.WriteString(" ")
		b.WriteString(c.key)
		b.WriteString("=")
		b.WriteString(c.val)
	}
	b.WriteString("]")
	return b.String()
}

// Unwrap returns the wrapped cause, if any.
func (e *Error) Unwrap() error { return e.err }

// Category returns the error's category.
func (e *Error) Category() Category { return e.category }

// Component returns the component label, "" when unset.
func (e *Error) Component() string { return e.component }

// Context returns the scrubbed value attached under key, ok=false when
// the key was never attached.
func (e *Error) Context(key string) (string, bool) {
	for _, c := range e.context {
		if c.key == key {
			return c.val, true
		}
	}
	return "", false
}

// Builder accumulates an Error. Methods return the receiver for
// chaining; Build finalizes.
type Builder struct {
	e Error
}

// New starts a builder wrapping err (which may be nil for a message-
// only error).
func New(err error) *Builder {
	return &Builder{e: Error{err: err}}
}

// Newf starts a builder with a formatted message. Arguments are
// scrubbed before formatting, so a raw coordinate in args comes out
// redacted.
func Newf(format string, args ...any) *Builder {
	return &Builder{e: Error{msg: fmt.Sprintf(format, ScrubArgs(args)...)}}
}

// Component names the subsystem the error belongs to ("poi",
// "tracegen", "market"…).
func (b *Builder) Component(name string) *Builder {
	b.e.component = name
	return b
}

// Category sets the error category.
func (b *Builder) Category(c Category) *Builder {
	b.e.category = c
	return b
}

// Context attaches one key/value pair. The value is scrubbed at
// attachment time — location-bearing values are redacted, everything
// else renders with %v.
func (b *Builder) Context(key string, val any) *Builder {
	b.e.context = append(b.e.context, kv{key: key, val: fmt.Sprint(Scrub(val))})
	return b
}

// Build finalizes the error.
func (b *Builder) Build() error { return &b.e }

// Errorf is the one-line form: a categorized, component-less error
// with scrubbed formatting. Use the builder when a component or
// context belongs on it.
func Errorf(c Category, format string, args ...any) error {
	return &Error{category: c, msg: fmt.Sprintf(format, ScrubArgs(args)...)}
}

// Is, As and Unwrap are passthroughs to the standard errors package so
// callers need only one errors import (the birdnet-go idiom this
// package follows).
func Is(err, target error) bool { return errors.Is(err, target) }

// As is a passthrough to errors.As.
func As(err error, target any) bool { return errors.As(err, target) }

// Unwrap is a passthrough to errors.Unwrap.
func Unwrap(err error) error { return errors.Unwrap(err) }

// CategoryOf returns the Category of err when it is (or wraps) a
// privlog error, CategoryInternal and ok=false otherwise.
func CategoryOf(err error) (Category, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.category, true
	}
	return CategoryInternal, false
}
