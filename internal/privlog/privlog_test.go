package privlog_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"locwatch/internal/geo"
	"locwatch/internal/privlog"
	"locwatch/internal/trace"
)

// rawCoord is a full-precision coordinate string that must never
// appear in any privlog output.
const rawLat, rawLon = 47.620493, -122.349281

func rawPoint() geo.LatLon { return geo.LatLon{Lat: rawLat, Lon: rawLon} }

// assertScrubbed fails when s contains the raw coordinate at full
// precision.
func assertScrubbed(t *testing.T, s string) {
	t.Helper()
	for _, frag := range []string{"47.620493", "122.349281", "47.6204", "122.3492"} {
		if strings.Contains(s, frag) {
			t.Fatalf("output %q leaks raw coordinate fragment %q", s, frag)
		}
	}
}

func TestScrubLatLonQuantizes(t *testing.T) {
	got := privlog.ScrubLatLon(rawPoint())
	assertScrubbed(t, got)
	if want := "≈(47.62, -122.35)"; got != want {
		t.Fatalf("ScrubLatLon = %q, want %q", got, want)
	}
}

func TestScrubLatLonPrecisionClamps(t *testing.T) {
	if got := privlog.ScrubLatLonPrecision(rawPoint(), -3); got != "≈(48, -122)" {
		t.Fatalf("decimals<0 = %q, want degree-rounded", got)
	}
	// 9 decimals clamps to 4 (~11 m), never full precision.
	assertScrubbed(t, privlog.ScrubLatLonPrecision(rawPoint(), 9))
}

func TestScrubDispatch(t *testing.T) {
	pt := trace.Point{Pos: rawPoint(), T: time.Date(2017, 6, 5, 12, 0, 0, 0, time.UTC)}
	box := geo.BoundingBox{MinLat: rawLat, MinLon: rawLon, MaxLat: rawLat + 0.5, MaxLon: rawLon + 0.5}
	for _, v := range []any{rawPoint(), &geo.LatLon{Lat: rawLat, Lon: rawLon}, pt, box, []trace.Point{pt, pt}} {
		assertScrubbed(t, fmt.Sprint(privlog.Scrub(v)))
	}
	// Non-location values pass through untouched.
	if got := privlog.Scrub(42); got != 42 {
		t.Fatalf("Scrub(42) = %v, want 42", got)
	}
	if got := privlog.Scrub("hello"); got != "hello" {
		t.Fatalf("Scrub(string) = %v", got)
	}
	var nilPtr *geo.LatLon
	if got := fmt.Sprint(privlog.Scrub(nilPtr)); got != "≈(nil)" {
		t.Fatalf("Scrub(nil *LatLon) = %q", got)
	}
}

type scrubbable struct{ id int }

func (s scrubbable) ScrubLocation() string { return fmt.Sprintf("place#%d", s.id) }

func TestScrubberInterfaceWins(t *testing.T) {
	if got := fmt.Sprint(privlog.Scrub(scrubbable{id: 7})); got != "place#7" {
		t.Fatalf("Scrub(LocationScrubber) = %q", got)
	}
}

func TestErrorfScrubsArgs(t *testing.T) {
	err := privlog.Errorf(privlog.CategorySim, "fix at %v rejected", rawPoint())
	assertScrubbed(t, err.Error())
	if !strings.Contains(err.Error(), "[sim]") {
		t.Fatalf("error %q missing category tag", err)
	}
}

func TestBuilderChain(t *testing.T) {
	cause := errors.New("short read")
	err := privlog.New(cause).
		Component("poi").
		Category(privlog.CategoryIO).
		Context("user", 12).
		Context("stay", rawPoint()).
		Build()

	s := err.Error()
	assertScrubbed(t, s)
	for _, want := range []string{"poi:", "short read", "[io", "user=12", "stay=≈(47.62, -122.35)"} {
		if !strings.Contains(s, want) {
			t.Errorf("error %q missing %q", s, want)
		}
	}
	if !privlog.Is(err, cause) {
		t.Error("privlog.Is lost the wrapped cause")
	}
	var pe *privlog.Error
	if !privlog.As(err, &pe) {
		t.Fatal("privlog.As failed")
	}
	if pe.Component() != "poi" || pe.Category() != privlog.CategoryIO {
		t.Errorf("component/category = %q/%v", pe.Component(), pe.Category())
	}
	if v, ok := pe.Context("stay"); !ok || !strings.HasPrefix(v, "≈(") {
		t.Errorf("Context(stay) = %q, %v", v, ok)
	}
	if _, ok := pe.Context("absent"); ok {
		t.Error("Context(absent) reported ok")
	}
	if privlog.Unwrap(err) != cause {
		t.Error("Unwrap did not return the cause")
	}
}

func TestCategoryOf(t *testing.T) {
	err := privlog.Errorf(privlog.CategoryParse, "bad line")
	wrapped := fmt.Errorf("outer: %w", err)
	if c, ok := privlog.CategoryOf(wrapped); !ok || c != privlog.CategoryParse {
		t.Fatalf("CategoryOf = %v, %v", c, ok)
	}
	if _, ok := privlog.CategoryOf(errors.New("plain")); ok {
		t.Fatal("CategoryOf(plain) reported ok")
	}
}

func TestCategoryStrings(t *testing.T) {
	cases := map[privlog.Category]string{
		privlog.CategoryInternal: "internal",
		privlog.CategoryConfig:   "config",
		privlog.CategoryParse:    "parse",
		privlog.CategoryIO:       "io",
		privlog.CategoryNetwork:  "network",
		privlog.CategorySim:      "sim",
		privlog.Category(99):     "Category(99)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestLoggerScrubs(t *testing.T) {
	var buf bytes.Buffer
	l := privlog.NewLogger("mobility", &buf)
	l.Printf(privlog.CategorySim, "user %d parked at %v", 3, rawPoint())
	out := buf.String()
	assertScrubbed(t, out)
	for _, want := range []string{"mobility [sim]", "user 3", "≈(47.62, -122.35)"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line %q missing %q", out, want)
		}
	}
}

func TestNilLoggerIsNoop(t *testing.T) {
	var l *privlog.Logger
	l.Printf(privlog.CategoryIO, "must not panic %v", rawPoint())
}

func TestNewLoggerNilWriterUsesDefault(t *testing.T) {
	l := privlog.NewLogger("x", nil)
	if l == nil {
		t.Fatal("NewLogger(nil) returned nil")
	}
}

func TestSprintfScrubs(t *testing.T) {
	s := privlog.Sprintf("home %v work %v n=%d", rawPoint(), rawPoint(), 2)
	assertScrubbed(t, s)
	if !strings.Contains(s, "n=2") {
		t.Errorf("Sprintf dropped clean args: %q", s)
	}
}

func TestScrubBoxRendersSpanNotCorners(t *testing.T) {
	b := geo.BoundingBox{MinLat: rawLat, MinLon: rawLon, MaxLat: rawLat + 0.2, MaxLon: rawLon + 0.2}
	s := privlog.ScrubBox(b)
	assertScrubbed(t, s)
	if !strings.Contains(s, "0.20°") {
		t.Errorf("ScrubBox %q missing span", s)
	}
}
