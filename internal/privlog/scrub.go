package privlog

import (
	"fmt"
	"io"
	"log"
	"math"

	"locwatch/internal/geo"
	"locwatch/internal/trace"
)

// ScrubDecimals is the default coordinate precision retained by Scrub:
// two decimal places of a degree, about 1.1 km of latitude — the same
// order as the cloaking cells the anonymize baselines release, and far
// coarser than the 50 m stay-point radius the paper's adversary needs.
const ScrubDecimals = 2

// LocationScrubber lets a type outside this package's import reach
// (poi.StayPoint, mobility venues) declare its own redacted rendering.
// Scrub calls it in preference to the built-in rules.
type LocationScrubber interface {
	ScrubLocation() string
}

// Scrub returns a redaction-safe stand-in for v: location-bearing
// values become precision-bounded strings, everything else passes
// through unchanged. It is the single choke point ScrubArgs, Context
// and the Logger all route values through.
func Scrub(v any) any {
	switch x := v.(type) {
	case LocationScrubber:
		return x.ScrubLocation()
	case geo.LatLon:
		return ScrubLatLon(x)
	case *geo.LatLon:
		if x == nil {
			return "≈(nil)"
		}
		return ScrubLatLon(*x)
	case geo.BoundingBox:
		return ScrubBox(x)
	case trace.Point:
		return fmt.Sprintf("%s@%s", ScrubLatLon(x.Pos), x.T.Format("2006-01-02T15:04:05Z07:00"))
	case []trace.Point:
		return fmt.Sprintf("[%d fixes]", len(x))
	default:
		return v
	}
}

// ScrubArgs returns a copy of args with every location-bearing value
// replaced by its scrubbed form. The original slice is not modified.
func ScrubArgs(args []any) []any {
	out := make([]any, len(args))
	for i, a := range args {
		out[i] = Scrub(a)
	}
	return out
}

// ScrubLatLon renders p quantized to ScrubDecimals decimal places,
// marked with ≈ so a redacted coordinate is never mistaken for a raw
// one.
func ScrubLatLon(p geo.LatLon) string {
	return ScrubLatLonPrecision(p, ScrubDecimals)
}

// ScrubLatLonPrecision renders p quantized to the given number of
// decimal places (clamped to [0, 4]; 4 decimals ≈ 11 m is the finest
// this package will ever emit, still coarser than a raw fix).
func ScrubLatLonPrecision(p geo.LatLon, decimals int) string {
	if decimals < 0 {
		decimals = 0
	}
	if decimals > 4 {
		decimals = 4
	}
	scale := math.Pow(10, float64(decimals))
	lat := math.Round(p.Lat*scale) / scale
	lon := math.Round(p.Lon*scale) / scale
	return fmt.Sprintf("≈(%.*f, %.*f)", decimals, lat, decimals, lon)
}

// ScrubBox renders a bounding box by its center (scrubbed) and its
// span order of magnitude — enough to reason about a release, not
// enough to recover a corner.
func ScrubBox(b geo.BoundingBox) string {
	return fmt.Sprintf("box %s spanning %.2f°×%.2f°", ScrubLatLon(b.Center()), b.MaxLat-b.MinLat, b.MaxLon-b.MinLon)
}

// Logger is a categorized logger whose formatting arguments pass
// through Scrub. It wraps a standard *log.Logger so prefixes and flags
// compose with the rest of the program's logging setup.
type Logger struct {
	out       *log.Logger
	component string
}

// NewLogger returns a Logger for the given component writing to w; a
// nil w uses the process-default logger destination.
func NewLogger(component string, w io.Writer) *Logger {
	if w == nil {
		return &Logger{out: log.Default(), component: component}
	}
	return &Logger{out: log.New(w, "", log.LstdFlags), component: component}
}

// Printf logs one categorized line with scrubbed arguments. A nil
// Logger is a no-op, so call sites need no guard.
func (l *Logger) Printf(c Category, format string, args ...any) {
	if l == nil {
		return
	}
	l.out.Printf("%s [%s]: %s", l.component, c, fmt.Sprintf(format, ScrubArgs(args)...))
}

// Sprintf formats with scrubbed arguments — the string-building
// counterpart of Printf for report emitters that own their writer.
func Sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, ScrubArgs(args)...)
}
