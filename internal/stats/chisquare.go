package stats

import (
	"errors"
	"fmt"
	"math"
)

// Tail selects which tail of the chi-square distribution a goodness-of-
// fit decision uses. The paper's prose says it tests "the lower tail";
// taken literally that rejects suspiciously *good* fits, which
// contradicts the surrounding text, so TailUpper (the conventional
// Pearson test) is the default everywhere and TailLower is kept for
// faithfulness experiments. See DESIGN.md §2.
type Tail int

const (
	// TailUpper rejects when the statistic is too large (conventional
	// Pearson goodness of fit): p = P(X > χ²).
	TailUpper Tail = iota
	// TailLower rejects when the statistic is too small, the paper's
	// literal wording: p = P(X ≤ χ²).
	TailLower
)

// String implements fmt.Stringer.
func (t Tail) String() string {
	switch t {
	case TailUpper:
		return "upper"
	case TailLower:
		return "lower"
	default:
		return fmt.Sprintf("Tail(%d)", int(t))
	}
}

// ErrDegenerate is returned when a test has no usable categories
// (all expected counts zero, or fewer than two categories).
var ErrDegenerate = errors.New("stats: degenerate chi-square test")

// GoodnessOfFit is the outcome of a Pearson chi-square test.
type GoodnessOfFit struct {
	Statistic float64 // Σ (observed − expected)² / expected
	DF        int     // degrees of freedom (categories − 1)
	PValue    float64 // probability in the chosen tail
	Tail      Tail    // which tail PValue refers to
}

// Match reports whether the observed distribution is considered to fit
// the expected one at significance level alpha: the null hypothesis
// "observed follows expected" is NOT rejected, i.e. PValue ≥ alpha.
func (g GoodnessOfFit) Match(alpha float64) bool { return g.PValue >= alpha }

// ChiSquareTest runs Pearson's chi-square goodness-of-fit test of the
// observed counts against the expected counts, which must have the same
// length. Expected categories with non-positive mass are skipped along
// with their observations, mirroring the usual practice of only testing
// categories present in the reference profile; observations in skipped
// categories therefore do not contribute to the statistic (callers that
// want novel categories to count must fold them into the expectation
// first, as core.Profile does with smoothing).
//
// The expected counts are rescaled so both distributions have the same
// total mass, making the test a comparison of shapes, which is how the
// paper uses it (a short collected trace against a long profile).
func ChiSquareTest(observed, expected []float64, tail Tail) (GoodnessOfFit, error) {
	if len(observed) != len(expected) {
		return GoodnessOfFit{}, fmt.Errorf("stats: observed has %d categories, expected has %d", len(observed), len(expected))
	}
	var obsTotal, expTotal float64
	categories := 0
	for i := range expected {
		if expected[i] <= 0 {
			continue
		}
		if observed[i] < 0 {
			return GoodnessOfFit{}, fmt.Errorf("stats: negative observed count %v in category %d", observed[i], i)
		}
		obsTotal += observed[i]
		expTotal += expected[i]
		categories++
	}
	if categories < 2 || expTotal <= 0 || obsTotal <= 0 {
		return GoodnessOfFit{}, ErrDegenerate
	}
	scale := obsTotal / expTotal

	var stat float64
	for i := range expected {
		if expected[i] <= 0 {
			continue
		}
		e := expected[i] * scale
		d := observed[i] - e
		stat += d * d / e
	}

	df := categories - 1
	g := GoodnessOfFit{Statistic: stat, DF: df, Tail: tail}
	var err error
	switch tail {
	case TailLower:
		g.PValue, err = ChiSquareCDF(stat, df)
	case TailUpper:
		g.PValue, err = ChiSquareSurvival(stat, df)
	default:
		// An out-of-range Tail would silently skew every His_bin
		// decision; fail loudly instead.
		err = fmt.Errorf("stats: unknown tail %v", tail)
	}
	if err != nil {
		return GoodnessOfFit{}, fmt.Errorf("stats: chi-square tail probability: %w", err)
	}
	return g, nil
}

// PaperStatistic computes the statistic exactly as printed in the
// paper's Formula 1, Σ (c − e)/e, which telescopes to a signed relative
// mass difference and can be negative. It is retained only so the
// faithfulness tests can document how it differs from Pearson's
// statistic; no detector uses it.
func PaperStatistic(observed, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: observed has %d categories, expected has %d", len(observed), len(expected))
	}
	var stat float64
	any := false
	for i := range expected {
		if expected[i] <= 0 {
			continue
		}
		any = true
		stat += (observed[i] - expected[i]) / expected[i]
	}
	if !any {
		return 0, ErrDegenerate
	}
	return stat, nil
}

// Entropy returns the Shannon entropy, in bits, of the given
// probability distribution. Non-positive entries contribute zero (the
// usual 0·log 0 = 0 convention). The input need not be normalized; it
// is normalized internally. An all-zero input yields zero entropy.
func Entropy(probs []float64) float64 {
	var total float64
	for _, p := range probs {
		if p > 0 {
			total += p
		}
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, p := range probs {
		if p <= 0 {
			continue
		}
		q := p / total
		h -= q * math.Log2(q)
	}
	if h < 0 { // guard against -0 from rounding
		h = 0
	}
	return h
}

// MaxEntropy returns log2(n), the entropy of the uniform distribution
// over n outcomes (the paper's H(M), Formula 4). n ≤ 1 yields 0.
func MaxEntropy(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}

// DegreeOfAnonymity implements the paper's Formula 5:
// Deg = H(X) / H(M), the attacker's posterior entropy normalized by
// the maximum entropy over n candidate profiles. It returns 0 when the
// posterior is concentrated on a single profile (full identification)
// and 1 when it is uniform (no information gained). n ≤ 1 yields 0:
// with at most one candidate the user is trivially identified.
func DegreeOfAnonymity(probs []float64, n int) float64 {
	hm := MaxEntropy(n)
	if hm == 0 {
		return 0
	}
	d := Entropy(probs) / hm
	if d > 1 {
		d = 1
	}
	return d
}

// NormalizeWeights converts non-negative weights into a probability
// distribution. A zero-sum input returns the uniform distribution over
// the same support size (the attacker has learned nothing).
func NormalizeWeights(weights []float64) []float64 {
	out := make([]float64, len(weights))
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		if len(weights) > 0 {
			u := 1 / float64(len(weights))
			for i := range out {
				out[i] = u
			}
		}
		return out
	}
	for i, w := range weights {
		if w > 0 {
			out[i] = w / total
		}
	}
	return out
}
