package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestChiSquareTestPerfectFit(t *testing.T) {
	obs := []float64{10, 20, 30, 40}
	exp := []float64{10, 20, 30, 40}
	g, err := ChiSquareTest(obs, exp, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	if g.Statistic != 0 {
		t.Errorf("Statistic = %v, want 0", g.Statistic)
	}
	if g.DF != 3 {
		t.Errorf("DF = %d, want 3", g.DF)
	}
	if g.PValue != 1 {
		t.Errorf("upper-tail p of perfect fit = %v, want 1", g.PValue)
	}
	if !g.Match(0.05) {
		t.Error("perfect fit should match at alpha=0.05")
	}
}

func TestChiSquareTestScaleInvariance(t *testing.T) {
	// The expected histogram is rescaled to the observed mass, so
	// multiplying the profile by a constant must not change the result.
	obs := []float64{5, 9, 2, 7}
	exp := []float64{10, 20, 5, 15}
	g1, err := ChiSquareTest(obs, exp, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	scaled := make([]float64, len(exp))
	for i, e := range exp {
		scaled[i] = e * 7.3
	}
	g2, err := ChiSquareTest(obs, scaled, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g1.Statistic-g2.Statistic) > 1e-9 {
		t.Errorf("statistic changed under profile scaling: %v vs %v", g1.Statistic, g2.Statistic)
	}
}

func TestChiSquareTestGrossMismatch(t *testing.T) {
	obs := []float64{100, 0, 0, 0}
	exp := []float64{25, 25, 25, 25}
	g, err := ChiSquareTest(obs, exp, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	if g.Match(0.05) {
		t.Errorf("gross mismatch passed as match (p=%v, stat=%v)", g.PValue, g.Statistic)
	}
	if g.Statistic < 100 {
		t.Errorf("statistic %v unexpectedly small", g.Statistic)
	}
}

func TestChiSquareTestSkipsZeroExpectation(t *testing.T) {
	obs := []float64{10, 10, 99}
	exp := []float64{10, 10, 0}
	g, err := ChiSquareTest(obs, exp, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	if g.DF != 1 {
		t.Errorf("DF = %d, want 1 (zero-expectation category skipped)", g.DF)
	}
	if g.Statistic != 0 {
		t.Errorf("Statistic = %v, want 0 once the unmatched category is skipped", g.Statistic)
	}
}

func TestChiSquareTestErrors(t *testing.T) {
	if _, err := ChiSquareTest([]float64{1}, []float64{1, 2}, TailUpper); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ChiSquareTest([]float64{1}, []float64{1}, TailUpper); !errors.Is(err, ErrDegenerate) {
		t.Errorf("single category should be ErrDegenerate, got %v", err)
	}
	if _, err := ChiSquareTest([]float64{0, 0}, []float64{1, 1}, TailUpper); !errors.Is(err, ErrDegenerate) {
		t.Errorf("zero observed mass should be ErrDegenerate, got %v", err)
	}
	if _, err := ChiSquareTest([]float64{-1, 2}, []float64{1, 1}, TailUpper); err == nil {
		t.Error("negative observation should error")
	}
}

func TestChiSquareTestTails(t *testing.T) {
	obs := []float64{12, 18, 31, 39}
	exp := []float64{10, 20, 30, 40}
	up, err := ChiSquareTest(obs, exp, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := ChiSquareTest(obs, exp, TailLower)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up.PValue+lo.PValue-1) > 1e-9 {
		t.Errorf("upper (%v) and lower (%v) tails are not complementary", up.PValue, lo.PValue)
	}
	if up.Tail != TailUpper || lo.Tail != TailLower {
		t.Error("Tail field not recorded")
	}
}

func TestTailString(t *testing.T) {
	if TailUpper.String() != "upper" || TailLower.String() != "lower" {
		t.Error("Tail.String mismatch")
	}
	if Tail(42).String() != "Tail(42)" {
		t.Errorf("unknown tail String = %q", Tail(42).String())
	}
}

func TestChiSquareTestFalsePositiveRate(t *testing.T) {
	// Draw observations from the profile distribution itself; the test
	// should reject roughly alpha of the time. With 300 trials at
	// alpha=0.05 we accept anything below 12%.
	rng := rand.New(rand.NewSource(21))
	exp := []float64{50, 30, 15, 5}
	probs := NormalizeWeights(exp)
	rejects := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		obs := make([]float64, len(exp))
		for i := 0; i < 400; i++ {
			obs[sampleIndex(rng, probs)]++
		}
		g, err := ChiSquareTest(obs, exp, TailUpper)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Match(0.05) {
			rejects++
		}
	}
	if rate := float64(rejects) / trials; rate > 0.12 {
		t.Errorf("false positive rate %.3f, want ≲ 0.05", rate)
	}
}

func TestChiSquareTestPower(t *testing.T) {
	// Observations from a clearly different distribution should be
	// rejected nearly always.
	rng := rand.New(rand.NewSource(22))
	exp := []float64{50, 30, 15, 5}
	alt := NormalizeWeights([]float64{5, 15, 30, 50})
	rejects := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		obs := make([]float64, len(exp))
		for i := 0; i < 400; i++ {
			obs[sampleIndex(rng, alt)]++
		}
		g, err := ChiSquareTest(obs, exp, TailUpper)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Match(0.05) {
			rejects++
		}
	}
	if rejects < trials*95/100 {
		t.Errorf("power too low: rejected %d/%d", rejects, trials)
	}
}

func TestPaperStatistic(t *testing.T) {
	// Documents why Formula 1 as printed is not Pearson's statistic:
	// with equal totals it telescopes to ~0 even for a gross mismatch.
	obs := []float64{100, 0}
	exp := []float64{50, 50}
	got, err := PaperStatistic(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-((100-50)/50.0+(0-50)/50.0)) > 1e-12 {
		t.Errorf("PaperStatistic = %v", got)
	}
	if math.Abs(got) > 1e-9 {
		t.Errorf("telescoped statistic should be ~0 here, got %v", got)
	}
	if _, err := PaperStatistic([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PaperStatistic([]float64{1, 2}, []float64{0, 0}); !errors.Is(err, ErrDegenerate) {
		t.Error("all-zero expectation should be ErrDegenerate")
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %v", got)
	}
	if got := Entropy([]float64{0, 0}); got != 0 {
		t.Errorf("Entropy(zeros) = %v", got)
	}
	if got := Entropy([]float64{1}); got != 0 {
		t.Errorf("Entropy(point mass) = %v", got)
	}
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Entropy(uniform 2) = %v, want 1", got)
	}
	if got := Entropy([]float64{1, 1, 1, 1}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Entropy(uniform 4, unnormalized) = %v, want 2", got)
	}
	// Entropy is maximal for the uniform distribution.
	if Entropy([]float64{0.7, 0.1, 0.1, 0.1}) >= 2 {
		t.Error("skewed distribution should have entropy < log2(4)")
	}
}

func TestDegreeOfAnonymity(t *testing.T) {
	if got := DegreeOfAnonymity([]float64{1}, 1); got != 0 {
		t.Errorf("single candidate: %v, want 0", got)
	}
	if got := DegreeOfAnonymity([]float64{0.25, 0.25, 0.25, 0.25}, 4); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform over all candidates: %v, want 1", got)
	}
	if got := DegreeOfAnonymity([]float64{1, 0, 0, 0}, 4); got != 0 {
		t.Errorf("fully identified: %v, want 0", got)
	}
	// Subset match: uniform over 2 of 4 profiles = 1 bit / 2 bits.
	if got := DegreeOfAnonymity([]float64{0.5, 0.5, 0, 0}, 4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half-identified: %v, want 0.5", got)
	}
}

func TestNormalizeWeights(t *testing.T) {
	got := NormalizeWeights([]float64{2, 6, 0, 2})
	want := []float64{0.2, 0.6, 0, 0.2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("NormalizeWeights = %v, want %v", got, want)
		}
	}
	// Zero-sum falls back to uniform.
	got = NormalizeWeights([]float64{0, 0})
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Fatalf("zero-sum normalize = %v, want uniform", got)
	}
	if out := NormalizeWeights(nil); len(out) != 0 {
		t.Fatalf("nil input should give empty output, got %v", out)
	}
	// Negative weights are treated as zero mass.
	got = NormalizeWeights([]float64{-5, 5})
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("negative weight handling = %v", got)
	}
}

func TestMaxEntropy(t *testing.T) {
	if MaxEntropy(0) != 0 || MaxEntropy(1) != 0 {
		t.Error("MaxEntropy of ≤1 outcomes should be 0")
	}
	if math.Abs(MaxEntropy(8)-3) > 1e-12 {
		t.Errorf("MaxEntropy(8) = %v, want 3", MaxEntropy(8))
	}
}

func sampleIndex(rng *rand.Rand, probs []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(probs) - 1
}
