package stats

import (
	"fmt"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. It backs every CDF figure in the paper (Figure 1, Figure 4a/b).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample. The input slice is copied.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the fraction of the sample ≤ x, in [0, 1]. An empty ECDF
// returns 0 everywhere.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; walk
	// forward over equal values to make the CDF right-continuous (≤ x).
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with At(v) ≥ p, for
// p in (0, 1]. Quantile of an empty ECDF is 0.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(p*float64(len(e.sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Min returns the smallest sample value (0 when empty).
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Max returns the largest sample value (0 when empty).
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// Points returns (x, y) pairs sampled at every distinct sample value,
// suitable for plotting a step CDF.
func (e *ECDF) Points() (xs, ys []float64) {
	for i, v := range e.sorted {
		if i+1 < len(e.sorted) && e.sorted[i+1] == v {
			continue
		}
		xs = append(xs, v)
		ys = append(ys, float64(i+1)/float64(len(e.sorted)))
	}
	return xs, ys
}

// Table renders the CDF evaluated at the given cut points as an aligned
// text table with the given value label, e.g.:
//
//	interval(s)  fraction
//	        10      0.578
func (e *ECDF) Table(label string, cuts []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s  %8s\n", label, "fraction")
	for _, c := range cuts {
		fmt.Fprintf(&b, "%12g  %8.3f\n", c, e.At(c))
	}
	return b.String()
}

// Mean returns the sample mean (0 when empty).
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	var s float64
	for _, v := range e.sorted {
		s += v
	}
	return s / float64(len(e.sorted))
}
