// Package stats implements the statistical machinery the privacy model
// depends on: the chi-square distribution (via the regularized
// incomplete gamma function), Pearson's goodness-of-fit test, Shannon
// entropy and the degree of anonymity, count histograms, and empirical
// CDFs.
//
// Everything is implemented on top of the standard library; the special
// functions follow the classic series/continued-fraction evaluation
// (Numerical Recipes §6.2) and are validated in the tests against
// reference values from R and scipy.
package stats

import (
	"errors"
	"math"
)

// ErrInvalidParameter is returned by the special functions when called
// outside their domain (e.g. non-positive shape).
var ErrInvalidParameter = errors.New("stats: invalid parameter")

const (
	gammaEps   = 3e-14
	gammaItMax = 500
	gammaFPMin = 1e-300
)

// RegularizedGammaP computes the regularized lower incomplete gamma
// function P(a, x) = γ(a, x) / Γ(a) for a > 0, x ≥ 0.
func RegularizedGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrInvalidParameter
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		// Series representation converges quickly here.
		return gammaSeries(a, x)
	}
	// Continued fraction for Q, then P = 1 - Q.
	q, err := gammaContinuedFractionQ(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// RegularizedGammaQ computes the regularized upper incomplete gamma
// function Q(a, x) = 1 − P(a, x).
func RegularizedGammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrInvalidParameter
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContinuedFractionQ(a, x)
}

// gammaSeries evaluates P(a, x) by its power series (valid for x < a+1).
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < gammaItMax; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, errors.New("stats: gamma series did not converge")
}

// gammaContinuedFractionQ evaluates Q(a, x) by the modified Lentz
// continued fraction (valid for x ≥ a+1).
func gammaContinuedFractionQ(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / gammaFPMin
	d := 1 / b
	h := d
	for i := 1; i <= gammaItMax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaFPMin {
			d = gammaFPMin
		}
		c = b + an/c
		if math.Abs(c) < gammaFPMin {
			c = gammaFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, errors.New("stats: gamma continued fraction did not converge")
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square distribution with k
// degrees of freedom.
func ChiSquareCDF(x float64, k int) (float64, error) {
	if k <= 0 {
		return 0, ErrInvalidParameter
	}
	if x <= 0 {
		return 0, nil
	}
	return RegularizedGammaP(float64(k)/2, x/2)
}

// ChiSquareSurvival returns the upper-tail probability P(X > x) for a
// chi-square distribution with k degrees of freedom.
func ChiSquareSurvival(x float64, k int) (float64, error) {
	if k <= 0 {
		return 0, ErrInvalidParameter
	}
	if x <= 0 {
		return 1, nil
	}
	return RegularizedGammaQ(float64(k)/2, x/2)
}

// ChiSquareQuantile returns the x such that ChiSquareCDF(x, k) = p, for
// p in (0, 1). It brackets the root and bisects; precision is ~1e-10,
// ample for critical-value lookups.
func ChiSquareQuantile(p float64, k int) (float64, error) {
	if k <= 0 || p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, ErrInvalidParameter
	}
	lo, hi := 0.0, float64(k)
	for {
		cdf, err := ChiSquareCDF(hi, k)
		if err != nil {
			return 0, err
		}
		if cdf >= p {
			break
		}
		hi *= 2
		if hi > 1e9 {
			return 0, errors.New("stats: quantile bracket overflow")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		cdf, err := ChiSquareCDF(mid, k)
		if err != nil {
			return 0, err
		}
		if cdf < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
