package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference values computed with scipy.special.gammainc / scipy.stats.chi2.
func TestRegularizedGammaPReference(t *testing.T) {
	tests := []struct {
		a, x, want float64
	}{
		{0.5, 0.5, 0.6826894921370859},
		{1, 1, 0.6321205588285577},
		{2.5, 1.0, 0.15085496391539038},
		{5, 5, 0.5595067149347875},
		{10, 3, 0.0011024881301291174},
		{10, 20, 0.9950045876916924},
		// Cross-checked via P(0.5, x) = erf(sqrt(x)): erf(3.16227766)
		// = 0.99999225578 by the erfc asymptotic expansion.
		{0.5, 10, 0.999992255783569},
		{50, 50, 0.5188083154720433},
	}
	for _, tt := range tests {
		got, err := RegularizedGammaP(tt.a, tt.x)
		if err != nil {
			t.Fatalf("P(%v,%v): %v", tt.a, tt.x, err)
		}
		if math.Abs(got-tt.want) > 1e-10 {
			t.Errorf("P(%v, %v) = %.15f, want %.15f", tt.a, tt.x, got, tt.want)
		}
	}
}

func TestRegularizedGammaDomainErrors(t *testing.T) {
	if _, err := RegularizedGammaP(0, 1); err == nil {
		t.Error("P(0, 1) should error")
	}
	if _, err := RegularizedGammaP(-1, 1); err == nil {
		t.Error("P(-1, 1) should error")
	}
	if _, err := RegularizedGammaP(1, -1); err == nil {
		t.Error("P(1, -1) should error")
	}
	if _, err := RegularizedGammaQ(math.NaN(), 1); err == nil {
		t.Error("Q(NaN, 1) should error")
	}
}

func TestGammaPQComplementary(t *testing.T) {
	f := func(aSeed, xSeed float64) bool {
		a := math.Mod(math.Abs(aSeed), 100) + 0.01
		x := math.Mod(math.Abs(xSeed), 200)
		p, err1 := RegularizedGammaP(a, x)
		q, err2 := RegularizedGammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p+q-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		a := rng.Float64()*20 + 0.1
		x1 := rng.Float64() * 40
		x2 := x1 + rng.Float64()*10
		p1, err1 := RegularizedGammaP(a, x1)
		p2, err2 := RegularizedGammaP(a, x2)
		if err1 != nil || err2 != nil {
			t.Fatalf("unexpected error: %v %v", err1, err2)
		}
		if p2 < p1-1e-12 {
			t.Fatalf("P not monotone: P(%v,%v)=%v > P(%v,%v)=%v", a, x1, p1, a, x2, p2)
		}
	}
}

// Reference values from scipy.stats.chi2.cdf.
func TestChiSquareCDFReference(t *testing.T) {
	tests := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841458820694124, 1, 0.95},
		{5.991464547107979, 2, 0.95},
		{7.814727903251179, 3, 0.95},
		{18.307038053275146, 10, 0.95},
		{1.0, 1, 0.6826894921370859},
		{5.0, 5, 0.5841198130044574},
		// Cross-checked against the closed form for k=3:
		// erf(sqrt(x/2)) - sqrt(2/pi)*sqrt(x)*exp(-x/2) = 0.0811086...
		{0.5, 3, 0.081108588345},
	}
	for _, tt := range tests {
		got, err := ChiSquareCDF(tt.x, tt.k)
		if err != nil {
			t.Fatalf("CDF(%v, %d): %v", tt.x, tt.k, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("ChiSquareCDF(%v, %d) = %.12f, want %.12f", tt.x, tt.k, got, tt.want)
		}
	}
}

func TestChiSquareEdges(t *testing.T) {
	if got, err := ChiSquareCDF(0, 3); err != nil || got != 0 {
		t.Errorf("CDF(0, 3) = %v, %v; want 0, nil", got, err)
	}
	if got, err := ChiSquareCDF(-5, 3); err != nil || got != 0 {
		t.Errorf("CDF(-5, 3) = %v, %v; want 0, nil", got, err)
	}
	if got, err := ChiSquareSurvival(0, 3); err != nil || got != 1 {
		t.Errorf("Survival(0, 3) = %v, %v; want 1, nil", got, err)
	}
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("CDF with k=0 should error")
	}
	if _, err := ChiSquareSurvival(1, -1); err == nil {
		t.Error("Survival with k=-1 should error")
	}
}

func TestChiSquareQuantileInvertsCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		k := rng.Intn(30) + 1
		p := rng.Float64()*0.98 + 0.01
		x, err := ChiSquareQuantile(p, k)
		if err != nil {
			t.Fatalf("Quantile(%v, %d): %v", p, k, err)
		}
		back, err := ChiSquareCDF(x, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-p) > 1e-8 {
			t.Fatalf("CDF(Quantile(%v, %d)) = %v", p, k, back)
		}
	}
}

func TestChiSquareQuantileKnownCriticalValues(t *testing.T) {
	// The standard alpha=0.05 critical values every textbook tabulates.
	tests := []struct {
		k    int
		want float64
	}{
		{1, 3.841}, {2, 5.991}, {3, 7.815}, {5, 11.070}, {10, 18.307},
	}
	for _, tt := range tests {
		got, err := ChiSquareQuantile(0.95, tt.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 0.001 {
			t.Errorf("critical value df=%d: got %.4f, want %.3f", tt.k, got, tt.want)
		}
	}
}

func TestChiSquareQuantileDomainErrors(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := ChiSquareQuantile(p, 3); err == nil {
			t.Errorf("Quantile(%v, 3) should error", p)
		}
	}
	if _, err := ChiSquareQuantile(0.5, 0); err == nil {
		t.Error("Quantile with k=0 should error")
	}
}

func BenchmarkChiSquareSurvival(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquareSurvival(12.3, 9); err != nil {
			b.Fatal(err)
		}
	}
}
