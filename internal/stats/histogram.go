package stats

import (
	"sort"
)

// Histogram is a count histogram over string-keyed categories. Both of
// the paper's user profiles are histograms of this shape:
//
//   - pattern 1: key = canonical place (region) ID, value = visit count;
//   - pattern 2: key = movement pattern "place_i→place_j", value = the
//     number of times the transition happened.
//
// The zero value is an empty histogram ready for use.
type Histogram struct {
	counts map[string]float64
	total  float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[string]float64)}
}

// Add increments the count of key by w (typically 1). Non-positive
// weights are ignored.
func (h *Histogram) Add(key string, w float64) {
	if w <= 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[string]float64)
	}
	h.counts[key] += w
	h.total += w
}

// Inc increments the count of key by one.
func (h *Histogram) Inc(key string) { h.Add(key, 1) }

// Count returns the count of key, zero if absent.
func (h *Histogram) Count(key string) float64 {
	return h.counts[key]
}

// Total returns the sum of all counts.
func (h *Histogram) Total() float64 { return h.total }

// Len returns the number of distinct keys.
func (h *Histogram) Len() int { return len(h.counts) }

// Keys returns the keys in sorted order for deterministic iteration.
func (h *Histogram) Keys() []string {
	keys := make([]string, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{counts: make(map[string]float64, len(h.counts)), total: h.total}
	for k, v := range h.counts {
		c.counts[k] = v
	}
	return c
}

// Scaled returns a copy of the histogram with every count multiplied
// by factor (which must be positive; otherwise the clone is returned
// unscaled). Scaling the observed histogram to an effective sample size
// is how the privacy model applies a design-effect correction for
// autocorrelated samples.
func (h *Histogram) Scaled(factor float64) *Histogram {
	c := h.Clone()
	if factor <= 0 || factor == 1 {
		return c
	}
	for k := range c.counts {
		c.counts[k] *= factor
	}
	c.total *= factor
	return c
}

// Reset empties the histogram in place, retaining allocated capacity.
func (h *Histogram) Reset() {
	for k := range h.counts {
		delete(h.counts, k)
	}
	h.total = 0
}

// Aligned materializes observed-vs-expected count vectors over the
// union of the two histograms' keys, in sorted key order. Keys present
// only in obs get expected count 0 (and are then subject to
// ChiSquareTest's zero-expectation skipping); keys present only in exp
// get observed count 0. The returned keys slice parallels both vectors.
func Aligned(obs, exp *Histogram) (keys []string, observed, expected []float64) {
	seen := make(map[string]struct{}, obs.Len()+exp.Len())
	for k := range obs.counts {
		seen[k] = struct{}{}
	}
	for k := range exp.counts {
		seen[k] = struct{}{}
	}
	keys = make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	observed = make([]float64, len(keys))
	expected = make([]float64, len(keys))
	for i, k := range keys {
		observed[i] = obs.Count(k)
		expected[i] = exp.Count(k)
	}
	return keys, observed, expected
}

// CompareHistograms runs the chi-square goodness-of-fit test of obs
// against the reference profile exp. smoothing, when positive, is added
// to every expected category (Laplace smoothing) so that observations
// in categories absent from the profile count as evidence of mismatch
// instead of being silently dropped.
//
// poolShare, when positive, applies the standard minimum-expected-count
// practice: categories holding less than poolShare of the expected mass
// are pooled into a single residual category (on both sides) before the
// test, which keeps the degrees of freedom honest when the reference
// has a long tail of rare categories.
func CompareHistograms(obs, exp *Histogram, smoothing, poolShare float64, tail Tail) (GoodnessOfFit, error) {
	_, observed, expected := Aligned(obs, exp)
	if smoothing > 0 {
		for i := range expected {
			expected[i] += smoothing
		}
	}
	if poolShare > 0 {
		observed, expected = poolSmallCategories(observed, expected, poolShare)
	}
	return ChiSquareTest(observed, expected, tail)
}

// poolSmallCategories merges every category whose expected share is
// below minShare into one residual category appended at the end.
func poolSmallCategories(observed, expected []float64, minShare float64) (obs, exp []float64) {
	var expTotal float64
	for _, e := range expected {
		expTotal += e
	}
	if expTotal <= 0 {
		return observed, expected
	}
	cut := expTotal * minShare
	var poolObs, poolExp float64
	for i := range expected {
		if expected[i] < cut {
			poolObs += observed[i]
			poolExp += expected[i]
			continue
		}
		obs = append(obs, observed[i])
		exp = append(exp, expected[i])
	}
	if poolExp > 0 || poolObs > 0 {
		obs = append(obs, poolObs)
		exp = append(exp, poolExp)
	}
	return obs, exp
}
