package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Len() != 0 || h.Total() != 0 {
		t.Fatal("new histogram not empty")
	}
	h.Inc("a")
	h.Inc("a")
	h.Add("b", 3)
	h.Add("c", 0)  // ignored
	h.Add("c", -1) // ignored
	if h.Count("a") != 2 {
		t.Errorf("Count(a) = %v", h.Count("a"))
	}
	if h.Count("b") != 3 {
		t.Errorf("Count(b) = %v", h.Count("b"))
	}
	if h.Count("missing") != 0 {
		t.Errorf("Count(missing) = %v", h.Count("missing"))
	}
	if h.Total() != 5 {
		t.Errorf("Total = %v", h.Total())
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
	keys := h.Keys()
	if !sort.StringsAreSorted(keys) || len(keys) != 2 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestHistogramZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Inc("x")
	if h.Count("x") != 1 || h.Total() != 1 {
		t.Fatal("zero-value Histogram not usable")
	}
}

func TestHistogramCloneIndependent(t *testing.T) {
	h := NewHistogram()
	h.Add("a", 2)
	c := h.Clone()
	c.Inc("a")
	c.Inc("b")
	if h.Count("a") != 2 || h.Len() != 1 {
		t.Fatal("Clone shares state with original")
	}
	if c.Count("a") != 3 || c.Total() != 4 {
		t.Fatal("Clone lost state")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Add("a", 5)
	h.Reset()
	if h.Len() != 0 || h.Total() != 0 || h.Count("a") != 0 {
		t.Fatal("Reset did not clear")
	}
	h.Inc("b")
	if h.Total() != 1 {
		t.Fatal("histogram unusable after Reset")
	}
}

func TestAligned(t *testing.T) {
	obs := NewHistogram()
	obs.Add("a", 1)
	obs.Add("c", 3)
	exp := NewHistogram()
	exp.Add("a", 10)
	exp.Add("b", 20)
	keys, o, e := Aligned(obs, exp)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	wantO := []float64{1, 0, 3}
	wantE := []float64{10, 20, 0}
	for i := range keys {
		if o[i] != wantO[i] || e[i] != wantE[i] {
			t.Fatalf("aligned obs=%v exp=%v", o, e)
		}
	}
}

func TestAlignedTotalInvariant(t *testing.T) {
	// Property: alignment preserves both totals, whatever the key sets.
	f := func(aKeys, bKeys []uint8) bool {
		obs := NewHistogram()
		exp := NewHistogram()
		for _, k := range aKeys {
			obs.Inc(string(rune('a' + k%26)))
		}
		for _, k := range bKeys {
			exp.Inc(string(rune('a' + k%26)))
		}
		_, o, e := Aligned(obs, exp)
		var so, se float64
		for i := range o {
			so += o[i]
			se += e[i]
		}
		return so == obs.Total() && se == exp.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareHistogramsSelfMatch(t *testing.T) {
	h := NewHistogram()
	h.Add("home→work", 40)
	h.Add("work→home", 38)
	h.Add("home→gym", 10)
	g, err := CompareHistograms(h, h, 0, 0, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Match(0.05) || g.Statistic != 0 {
		t.Fatalf("histogram does not match itself: %+v", g)
	}
}

func TestCompareHistogramsSmoothingCatchesNovelKeys(t *testing.T) {
	// Without smoothing, observations in categories absent from the
	// profile are dropped; with smoothing they count as mismatch.
	obs := NewHistogram()
	obs.Add("novel", 100)
	obs.Add("a", 1)
	exp := NewHistogram()
	exp.Add("a", 50)
	exp.Add("b", 50)

	unsmoothed, err := CompareHistograms(obs, exp, 0, 0, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err := CompareHistograms(obs, exp, 0.5, 0, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	if smoothed.Statistic <= unsmoothed.Statistic {
		t.Fatalf("smoothing should raise the statistic: %v vs %v",
			smoothed.Statistic, unsmoothed.Statistic)
	}
	if smoothed.Match(0.05) {
		t.Fatalf("100 observations in a novel category should not match (p=%v)", smoothed.PValue)
	}
}

func TestCompareHistogramsSubsampleMatches(t *testing.T) {
	// A random subsample of a profile should still match it — the key
	// property the His_bin detector relies on.
	rng := rand.New(rand.NewSource(31))
	exp := NewHistogram()
	keys := []string{"h→w", "w→h", "h→g", "g→w", "w→r", "r→h"}
	weights := []float64{40, 38, 12, 12, 6, 6}
	for i, k := range keys {
		exp.Add(k, weights[i])
	}
	probs := NormalizeWeights(weights)
	obs := NewHistogram()
	for i := 0; i < 120; i++ {
		obs.Inc(keys[sampleIndex(rng, probs)])
	}
	g, err := CompareHistograms(obs, exp, 0.5, 0, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Match(0.05) {
		t.Fatalf("subsample of profile rejected: %+v", g)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3, 3, 9})
	if e.N() != 5 {
		t.Errorf("N = %d", e.N())
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.2}, {2.9, 0.2}, {3, 0.6}, {5, 0.8}, {9, 1}, {100, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.Min() != 1 || e.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", e.Min(), e.Max())
	}
	if got := e.Mean(); math.Abs(got-4.2) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.N() != 0 || e.Min() != 0 || e.Max() != 0 || e.Mean() != 0 || e.Quantile(0.5) != 0 {
		t.Fatal("empty ECDF misbehaves")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	tests := []struct {
		p    float64
		want float64
	}{
		{0.1, 10}, {0.5, 50}, {0.95, 100}, {1, 100}, {0, 10}, {-1, 10}, {2, 100},
	}
	for _, tt := range tests {
		if got := e.Quantile(tt.p); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(sample []float64) bool {
		if len(sample) == 0 {
			return true
		}
		for i := range sample {
			if math.IsNaN(sample[i]) || math.IsInf(sample[i], 0) {
				return true
			}
		}
		e := NewECDF(sample)
		prev := -1.0
		xs, _ := e.Points()
		for _, x := range xs {
			y := e.At(x)
			if y < prev {
				return false
			}
			prev = y
		}
		return e.At(e.Max()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 1, 2, 3})
	xs, ys := e.Points()
	wantX := []float64{1, 2, 3}
	wantY := []float64{0.5, 0.75, 1}
	if len(xs) != 3 {
		t.Fatalf("Points xs = %v", xs)
	}
	for i := range wantX {
		if xs[i] != wantX[i] || math.Abs(ys[i]-wantY[i]) > 1e-12 {
			t.Fatalf("Points = %v, %v", xs, ys)
		}
	}
}

func TestECDFTable(t *testing.T) {
	e := NewECDF([]float64{5, 15, 300})
	out := e.Table("interval(s)", []float64{10, 60, 600})
	if !strings.Contains(out, "interval(s)") || !strings.Contains(out, "0.333") {
		t.Errorf("unexpected table:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 4 {
		t.Errorf("table has %d lines, want 4", lines)
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	sample := []float64{3, 1, 2}
	e := NewECDF(sample)
	sample[0] = 100
	if e.Max() != 3 {
		t.Fatal("ECDF aliases its input slice")
	}
}

func BenchmarkCompareHistograms(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	exp := NewHistogram()
	for i := 0; i < 60; i++ {
		exp.Add(string(rune('A'+i%26))+string(rune('a'+i/26)), rng.Float64()*50+1)
	}
	obs := exp.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompareHistograms(obs, exp, 0.5, 0, TailUpper); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHistogramScaled(t *testing.T) {
	h := NewHistogram()
	h.Add("a", 10)
	h.Add("b", 30)
	s := h.Scaled(0.25)
	if s.Count("a") != 2.5 || s.Count("b") != 7.5 || s.Total() != 10 {
		t.Fatalf("Scaled(0.25): %v/%v total %v", s.Count("a"), s.Count("b"), s.Total())
	}
	// Original untouched.
	if h.Count("a") != 10 || h.Total() != 40 {
		t.Fatal("Scaled mutated the original")
	}
	// Factor 1 and non-positive factors return an unscaled clone.
	if c := h.Scaled(1); c.Total() != 40 {
		t.Fatal("Scaled(1) changed mass")
	}
	if c := h.Scaled(0); c.Total() != 40 {
		t.Fatal("Scaled(0) should clone unscaled")
	}
	if c := h.Scaled(-2); c.Total() != 40 {
		t.Fatal("Scaled(-2) should clone unscaled")
	}
}

func TestCompareHistogramsPooling(t *testing.T) {
	// A reference with two big categories and many tiny ones: pooling
	// merges the tail, shrinking the degrees of freedom.
	exp := NewHistogram()
	exp.Add("big1", 500)
	exp.Add("big2", 450)
	for i := 0; i < 20; i++ {
		exp.Add(string(rune('a'+i)), 1) // 20 categories at ~0.1% each
	}
	obs := exp.Clone()

	unpooled, err := CompareHistograms(obs, exp, 0, 0, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := CompareHistograms(obs, exp, 0, 0.02, TailUpper)
	if err != nil {
		t.Fatal(err)
	}
	if unpooled.DF != 21 {
		t.Fatalf("unpooled DF = %d, want 21", unpooled.DF)
	}
	if pooled.DF != 2 { // big1, big2, residual pool
		t.Fatalf("pooled DF = %d, want 2", pooled.DF)
	}
	if !pooled.Match(0.05) {
		t.Fatal("identical histograms should match after pooling")
	}
}

func TestPoolingPreservesMass(t *testing.T) {
	obs := []float64{5, 1, 1, 1, 90}
	exp := []float64{50, 1, 1, 1, 47}
	pObs, pExp := poolSmallCategories(obs, exp, 0.05)
	var so, se, wo, we float64
	for i := range obs {
		wo += obs[i]
		we += exp[i]
	}
	for i := range pObs {
		so += pObs[i]
		se += pExp[i]
	}
	if so != wo || se != we {
		t.Fatalf("pooling changed mass: %v/%v vs %v/%v", so, se, wo, we)
	}
	if len(pObs) != 3 { // 50, 47, pool(1+1+1)
		t.Fatalf("pooled to %d categories, want 3", len(pObs))
	}
}
