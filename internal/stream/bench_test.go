package stream

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkStreamIngest measures the hot ingest path end to end:
// producer-side submit plus shard-side feed, 64-fix batches, default
// debounce. The shard goroutine runs concurrently, so ns/op is the
// producer's cost under a keeping-up consumer.
func BenchmarkStreamIngest(b *testing.B) {
	e, err := New(Config{Anchor: testAnchor, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	const batch = 64
	g := newGen(1, 0)
	pts := g.next(b.N * batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Ingest(ctx, "bench", pts[i*batch:(i+1)*batch]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := e.SyncAll(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRiskQuery measures the serving path: a round trip through
// the owning shard for an up-to-date snapshot (no recompute — the
// debounced scheduler's steady state for a quiet user).
func BenchmarkRiskQuery(b *testing.B) {
	e, err := New(Config{Anchor: testAnchor, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	const users = 16
	for u := 0; u < users; u++ {
		g := newGen(int64(u)+1, float64(u)*200)
		if err := e.Ingest(ctx, fmt.Sprintf("bench-%02d", u), g.next(2000)); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.SyncAll(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Risk(ctx, fmt.Sprintf("bench-%02d", i%users)); err != nil {
			b.Fatal(err)
		}
	}
}
