// Package difftest is the differential harness for the streaming
// engine: it replays the same simulated traces through the batch
// pipeline (core.BuildProfile, the reference semantics) and through a
// live stream.Engine under an adversarial schedule — randomized batch
// sizes, randomized cross-user interleaving, arbitrary shard counts,
// wall-clock flush timing, mid-stream eviction — and asserts the two
// end states are byte-identical: profile fingerprints down to the
// float bits, and risk metrics field by field.
//
// The harness is a library so the golden tests, the race soak, and
// future regression sweeps all share one definition of "identical".
package difftest

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
	"time"

	"locwatch/internal/core"
	"locwatch/internal/mobility"
	"locwatch/internal/stream"
)

// Fingerprint digests a profile to a hex string that is equal iff the
// profiles are byte-identical in every field the paper's metrics read:
// point count, canonical places (ids, centroid float bits, visit
// counts, dwell), and both pattern histograms (keys and count float
// bits). Floats are folded in as their IEEE-754 bit patterns, so two
// values differing in the last ulp fingerprint differently — this is
// deliberately stricter than any tolerance-based comparison.
func Fingerprint(p *core.Profile) string {
	h := sha256.New()
	writeInt(h, p.NumPoints())
	writeInt(h, p.NumVisits())
	places := p.Places()
	writeInt(h, len(places))
	for _, pl := range places {
		writeInt(h, pl.ID)
		writeFloat(h, pl.Pos.Lat)
		writeFloat(h, pl.Pos.Lon)
		writeInt(h, pl.Visits)
		writeInt(h, int(pl.Dwell))
	}
	for _, pat := range []core.Pattern{core.PatternRegion, core.PatternMovement} {
		hist := p.Histogram(pat)
		keys := append([]string(nil), hist.Keys()...)
		sort.Strings(keys)
		writeInt(h, len(keys))
		for _, k := range keys {
			_, _ = h.Write([]byte(k)) // hash.Hash.Write never errors
			_, _ = h.Write([]byte{0})
			writeFloat(h, hist.Count(k))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeInt(h hash.Hash, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(v)))
	_, _ = h.Write(b[:]) // hash.Hash.Write never errors
}

func writeFloat(h hash.Hash, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, _ = h.Write(b[:]) // hash.Hash.Write never errors
}

// Run is one side's end state: per-user profile fingerprints and
// finalized risk snapshots, keyed by stream.UserID.
type Run struct {
	Profiles map[string]string
	Risks    map[string]stream.Risk
}

// Equal reports the first divergence between two runs, or nil if they
// are identical. Risk structs are compared with ==, so every field —
// including the float bits of DegAnonymity — must match exactly.
func (r *Run) Equal(other *Run) error {
	if len(r.Profiles) != len(other.Profiles) {
		return fmt.Errorf("difftest: %d users vs %d", len(r.Profiles), len(other.Profiles))
	}
	ids := make([]string, 0, len(r.Profiles))
	for id := range r.Profiles {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ofp, ok := other.Profiles[id]
		if !ok {
			return fmt.Errorf("difftest: user %s missing from other run", id)
		}
		if fp := r.Profiles[id]; fp != ofp {
			return fmt.Errorf("difftest: user %s: profile fingerprints differ: %s vs %s", id, fp[:12], ofp[:12])
		}
		if a, b := r.Risks[id], other.Risks[id]; a != b {
			return fmt.Errorf("difftest: user %s: risk differs: %+v vs %+v", id, a, b)
		}
	}
	return nil
}

// BatchRun computes the reference end state: for every selected user a
// plain core.BuildProfile over the full trace, scored through the same
// stream.ComputeRisk the engine uses. Fixes and Finalized are set to
// the values a finalized stream must report, so the structs compare
// with ==.
func BatchRun(w *mobility.World, cfg stream.Config, interval time.Duration, users []int) (*Run, error) {
	cfg = cfg.WithDefaults()
	if users == nil {
		users = allUsers(w)
	}
	run := &Run{Profiles: map[string]string{}, Risks: map[string]stream.Risk{}}
	for _, u := range users {
		id := stream.UserID(u)
		src, err := w.Trace(u, interval)
		if err != nil {
			return nil, fmt.Errorf("difftest: batch user %s: %w", id, err)
		}
		prof, err := core.BuildProfile(src, cfg.Anchor, cfg.Core)
		if err != nil {
			return nil, fmt.Errorf("difftest: batch user %s: %w", id, err)
		}
		risk, err := stream.ComputeRisk(id, prof, cfg.References, cfg.SensitiveMaxVisits, cfg.Pattern)
		if err != nil {
			return nil, fmt.Errorf("difftest: batch user %s: %w", id, err)
		}
		risk.Fixes = prof.NumPoints()
		risk.Finalized = true
		run.Profiles[id] = Fingerprint(prof)
		run.Risks[id] = risk
	}
	return run, nil
}

// StreamRun replays the world through a fresh engine under the given
// schedule, finalizes, and captures the end state. The engine is
// closed before returning; snapshots are taken on the quiesced engine
// between FinalizeAll and Close.
func StreamRun(ctx context.Context, w *mobility.World, cfg stream.Config, rcfg stream.ReplayConfig) (*Run, error) {
	if rcfg.Interval <= 0 {
		return nil, fmt.Errorf("difftest: replay interval must be set")
	}
	eng, err := stream.New(cfg)
	if err != nil {
		return nil, err
	}
	//lint:ignore ctxflow teardown must drain whatever the replay enqueued; abandoning it on cancel would leak the shard goroutines
	defer func() { _ = eng.Close() }()
	if _, err := stream.Replay(ctx, eng, w, rcfg); err != nil {
		return nil, err
	}
	if err := eng.FinalizeAll(ctx); err != nil {
		return nil, err
	}
	users := rcfg.Users
	if users == nil {
		users = allUsers(w)
	}
	run := &Run{Profiles: map[string]string{}, Risks: map[string]stream.Risk{}}
	for _, u := range users {
		id := stream.UserID(u)
		prof, err := eng.Snapshot(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("difftest: stream user %s: %w", id, err)
		}
		risk, err := eng.Risk(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("difftest: stream user %s: %w", id, err)
		}
		run.Profiles[id] = Fingerprint(prof)
		run.Risks[id] = risk
	}
	return run, nil
}

// Diff runs both sides and returns the batch run plus the first
// divergence (nil when byte-identical).
func Diff(ctx context.Context, w *mobility.World, cfg stream.Config, rcfg stream.ReplayConfig) (*Run, error) {
	batch, err := BatchRun(w, cfg, rcfg.Interval, rcfg.Users)
	if err != nil {
		return nil, err
	}
	streamed, err := StreamRun(ctx, w, cfg, rcfg)
	if err != nil {
		return nil, err
	}
	if err := batch.Equal(streamed); err != nil {
		return nil, err
	}
	return batch, nil
}

func allUsers(w *mobility.World) []int {
	users := make([]int, w.NumUsers())
	for i := range users {
		users[i] = i
	}
	return users
}
