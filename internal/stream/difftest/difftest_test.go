package difftest

import (
	"context"
	"testing"
	"time"

	"locwatch/internal/core"
	"locwatch/internal/experiments"
	"locwatch/internal/mobility"
	"locwatch/internal/stream"
	"locwatch/internal/trace"
)

// quickSetup builds the Quick-scale world (24 users, 8 days — the
// benchmark/smoke configuration) plus a stream.Config whose references
// are the users' own batch profiles, so His_bin and the identification
// adversary carry real signal in the comparison.
func quickSetup(t testing.TB, interval time.Duration) (*mobility.World, stream.Config) {
	t.Helper()
	qc := experiments.Quick()
	w, err := mobility.New(qc.Mobility)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{
		Anchor:             qc.Mobility.CityCenter,
		Core:               qc.Core,
		SensitiveMaxVisits: qc.SensitiveMaxVisits,
	}
	byUser := make(map[string]*core.Profile, w.NumUsers())
	candidates := make([]*core.Profile, 0, w.NumUsers())
	for u := 0; u < w.NumUsers(); u++ {
		src, err := w.Trace(u, interval)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := core.BuildProfile(src, cfg.Anchor, cfg.Core)
		if err != nil {
			t.Fatal(err)
		}
		byUser[stream.UserID(u)] = prof
		candidates = append(candidates, prof)
	}
	refs, err := stream.NewReferences(cfg.Pattern, byUser, candidates)
	if err != nil {
		t.Fatal(err)
	}
	cfg.References = refs
	return w, cfg
}

// TestGoldenQuickShardSweep is the PR's headline assertion: the
// Quick-config population replayed through the streaming engine ends
// byte-identical to the batch pipeline for every shard count, under
// schedules that vary batch sizing, interleaving seed, debounce
// threshold, wall-clock flush timing, and mid-stream eviction.
func TestGoldenQuickShardSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-config replay sweep; skipped with -short")
	}
	const interval = time.Minute
	w, cfg := quickSetup(t, interval)
	ctx := context.Background()

	batch, err := BatchRun(w, cfg, interval, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Profiles) != w.NumUsers() {
		t.Fatalf("batch covered %d users, want %d", len(batch.Profiles), w.NumUsers())
	}

	cases := []struct {
		name   string
		shards int
		rcfg   stream.ReplayConfig
		tweak  func(*stream.Config)
	}{
		{
			name:   "shards=1/single-fix-batches",
			shards: 1,
			rcfg:   stream.ReplayConfig{Interval: interval, MinBatch: 1, MaxBatch: 1, Seed: 1},
		},
		{
			name:   "shards=4/random-batches/evict",
			shards: 4,
			rcfg:   stream.ReplayConfig{Interval: interval, MinBatch: 1, MaxBatch: 257, Seed: 42, EvictEvery: 50},
			tweak:  func(c *stream.Config) { c.RecomputeEvery = 64 },
		},
		{
			name:   "shards=16/large-batches/ticker",
			shards: 16,
			rcfg:   stream.ReplayConfig{Interval: interval, MinBatch: 100, MaxBatch: 1000, Seed: 7, EvictEvery: 11},
			tweak: func(c *stream.Config) {
				c.RecomputeEvery = 8192
				c.FlushInterval = 3 * time.Millisecond // wall-clock flushes racing the replay
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scfg := cfg
			scfg.Shards = tc.shards
			if tc.tweak != nil {
				tc.tweak(&scfg)
			}
			streamed, err := StreamRun(ctx, w, scfg, tc.rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := batch.Equal(streamed); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiffSmallWorld runs the combined Diff entry point on a small
// population so the harness itself is exercised in -short runs too.
func TestDiffSmallWorld(t *testing.T) {
	mc := mobility.DefaultConfig()
	mc.Users = 6
	mc.Days = 3
	w, err := mobility.New(mc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{Anchor: mc.CityCenter, Shards: 3}
	rcfg := stream.ReplayConfig{Interval: 30 * time.Second, MinBatch: 1, MaxBatch: 97, Seed: 3, EvictEvery: 20}
	run, err := Diff(context.Background(), w, cfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Profiles) != mc.Users {
		t.Fatalf("diff covered %d users, want %d", len(run.Profiles), mc.Users)
	}
	for id, r := range run.Risks {
		if !r.Finalized || r.Fixes == 0 {
			t.Fatalf("user %s: batch risk not normalized: %+v", id, r)
		}
	}
}

// TestFingerprintDiscriminates guards the harness against the failure
// mode that would make every comparison vacuously pass: fingerprints
// must differ across users and across truncated traces, and must be
// stable for identical rebuilds.
func TestFingerprintDiscriminates(t *testing.T) {
	mc := mobility.DefaultConfig()
	mc.Users = 2
	mc.Days = 2
	w, err := mobility.New(mc)
	if err != nil {
		t.Fatal(err)
	}
	build := func(u int, limit int) *core.Profile {
		t.Helper()
		src, err := w.Trace(u, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var s trace.Source = src
		if limit > 0 {
			s = trace.NewHead(src, limit)
		}
		prof, err := core.BuildProfile(s, mc.CityCenter, core.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	a1, a2 := Fingerprint(build(0, 0)), Fingerprint(build(0, 0))
	if a1 != a2 {
		t.Fatal("identical rebuilds fingerprint differently")
	}
	if b := Fingerprint(build(1, 0)); b == a1 {
		t.Fatal("distinct users share a fingerprint")
	}
	if h := Fingerprint(build(0, 500)); h == a1 {
		t.Fatal("truncated trace shares the full trace's fingerprint")
	}
}
