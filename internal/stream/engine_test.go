package stream

import (
	"context"
	"errors"
	"testing"
	"time"

	"locwatch/internal/core"
	"locwatch/internal/geo"
	"locwatch/internal/trace"
)

var testAnchor = geo.LatLon{Lat: 39.99, Lon: 116.31}

// tb builds synthetic traces for engine tests: stays of configurable
// dwell at venues placed by local offset, connected by walks, sampled
// every 30 s — enough density for the default extractor (50 m radius,
// 10 min dwell) to find every stay.
type tb struct {
	pts []trace.Point
	pos geo.LatLon
	t   time.Time
}

func newTB(startOffsetMeters float64) *tb {
	pos := testAnchor
	if startOffsetMeters != 0 {
		pos = geo.Destination(testAnchor, 90, startOffsetMeters)
	}
	return &tb{pos: pos, t: time.Date(2026, 3, 2, 8, 0, 0, 0, time.UTC)}
}

func (b *tb) emit() {
	b.pts = append(b.pts, trace.Point{Pos: b.pos, T: b.t})
	b.t = b.t.Add(30 * time.Second)
}

func (b *tb) stay(d time.Duration) *tb {
	for end := b.t.Add(d); b.t.Before(end); {
		b.emit()
	}
	return b
}

func (b *tb) walk(bearingDeg, meters float64) *tb {
	const speed = 1.4 // m/s
	steps := int(meters / (speed * 30))
	for i := 0; i < steps; i++ {
		b.pos = geo.Destination(b.pos, bearingDeg, speed*30)
		b.emit()
	}
	return b
}

// commute is a two-venue day with enough dwell to yield visits.
func commute(offset float64) []trace.Point {
	return newTB(offset).
		stay(45*time.Minute).
		walk(0, 600).
		stay(30*time.Minute).
		walk(180, 600).
		stay(20 * time.Minute).pts
}

func mustEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	cfg.Anchor = testAnchor
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestIngestAndRiskRoundTrip(t *testing.T) {
	e := mustEngine(t, Config{Shards: 2})
	ctx := context.Background()
	pts := commute(0)
	if err := e.Ingest(ctx, "alice", pts); err != nil {
		t.Fatal(err)
	}
	if err := e.FinalizeAll(ctx); err != nil {
		t.Fatal(err)
	}
	r, err := e.Risk(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if r.UserID != "alice" || r.Fixes != len(pts) || !r.Finalized {
		t.Fatalf("risk = %+v", r)
	}
	// The walk out and back makes the first and last stay one canonical
	// place: 3 visits over 2 places.
	if r.Visits != 3 || r.PoITotal != 2 {
		t.Fatalf("want 3 visits at 2 places, got %+v", r)
	}
	if r.StaleFixes != 0 {
		t.Fatalf("finalized snapshot is stale: %+v", r)
	}
	if r.DegAnonymity != 1 || r.HisBin != 0 {
		t.Fatalf("reference-free run must be max-anonymity: %+v", r)
	}
}

func TestRiskUnknownUser(t *testing.T) {
	e := mustEngine(t, Config{})
	if _, err := e.Risk(context.Background(), "nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v, want ErrUnknownUser", err)
	}
}

func TestIngestValidation(t *testing.T) {
	e := mustEngine(t, Config{MaxBatch: 8})
	ctx := context.Background()
	if err := e.Ingest(ctx, "", commute(0)[:1]); err == nil {
		t.Fatal("empty user id accepted")
	}
	if err := e.Ingest(ctx, "alice", make([]trace.Point, 9)); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
	if err := e.Ingest(ctx, "alice", nil); err != nil {
		t.Fatalf("empty batch must be a no-op, got %v", err)
	}
}

// TestOutOfOrderPoisonsUserNotShard pins the blast radius of a
// misbehaving producer: the user's queries fail, shard-mates are
// untouched.
func TestOutOfOrderPoisonsUserNotShard(t *testing.T) {
	e := mustEngine(t, Config{Shards: 1}) // same shard for everyone
	ctx := context.Background()
	pts := commute(0)
	if err := e.Ingest(ctx, "bad", pts[10:12]); err != nil {
		t.Fatal(err)
	}
	// Rewind: the second batch starts before the first ended.
	if err := e.Ingest(ctx, "bad", pts[:2]); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(ctx, "good", pts); err != nil {
		t.Fatal(err)
	}
	if err := e.SyncAll(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Risk(ctx, "bad"); err == nil {
		t.Fatal("poisoned user served a risk snapshot")
	}
	if _, err := e.Risk(ctx, "good"); err != nil {
		t.Fatalf("shard-mate poisoned too: %v", err)
	}
}

// TestDebounceScheduler pins the recompute policy: below the threshold
// snapshots go stale (StaleFixes counts up), crossing it recomputes,
// and SyncAll recomputes the tail.
func TestDebounceScheduler(t *testing.T) {
	e := mustEngine(t, Config{RecomputeEvery: 1 << 20})
	ctx := context.Background()
	pts := commute(0)
	if err := e.Ingest(ctx, "alice", pts[:10]); err != nil {
		t.Fatal(err)
	}
	r, err := e.Risk(ctx, "alice") // first query computes
	if err != nil {
		t.Fatal(err)
	}
	if r.Fixes != 10 || r.StaleFixes != 0 {
		t.Fatalf("first-query snapshot: %+v", r)
	}
	if err := e.Ingest(ctx, "alice", pts[10:20]); err != nil {
		t.Fatal(err)
	}
	r, err = e.Risk(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if r.Fixes != 10 || r.StaleFixes != 10 {
		t.Fatalf("below-threshold snapshot must be stale: %+v", r)
	}
	if err := e.SyncAll(ctx); err != nil {
		t.Fatal(err)
	}
	r, err = e.Risk(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if r.Fixes != 20 || r.StaleFixes != 0 {
		t.Fatalf("SyncAll did not refresh: %+v", r)
	}
}

func TestEvictThenResume(t *testing.T) {
	e := mustEngine(t, Config{})
	ctx := context.Background()
	pts := commute(0)
	if err := e.Ingest(ctx, "alice", pts[:len(pts)/2]); err != nil {
		t.Fatal(err)
	}
	found, err := e.Evict(ctx, "alice")
	if err != nil || !found {
		t.Fatalf("evict = %v, %v", found, err)
	}
	if found, _ := e.Evict(ctx, "ghost"); found {
		t.Fatal("evicted a user that never existed")
	}
	if err := e.Ingest(ctx, "alice", pts[len(pts)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := e.FinalizeAll(ctx); err != nil {
		t.Fatal(err)
	}
	r, err := e.Risk(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if r.Fixes != len(pts) || r.Visits != 3 {
		t.Fatalf("post-eviction resume lost state: %+v", r)
	}
}

func TestCloseSemantics(t *testing.T) {
	e := mustEngine(t, Config{FlushInterval: time.Millisecond})
	ctx := context.Background()
	if err := e.Ingest(ctx, "alice", commute(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if err := e.Ingest(ctx, "alice", commute(0)[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v", err)
	}
	if _, err := e.Risk(ctx, "alice"); !errors.Is(err, ErrClosed) {
		t.Fatalf("risk after close: %v", err)
	}
	if err := e.SyncAll(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestUsersSorted(t *testing.T) {
	e := mustEngine(t, Config{Shards: 4})
	ctx := context.Background()
	for _, id := range []string{"zoe", "al", "mia"} {
		if err := e.Ingest(ctx, id, commute(0)[:2]); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := e.Users(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "al" || ids[1] != "mia" || ids[2] != "zoe" {
		t.Fatalf("users = %v", ids)
	}
}

func TestIngestBackpressureRespectsContext(t *testing.T) {
	// One shard, queue of one, and the shard goroutine blocked: a
	// second submission must block and then honor cancellation.
	e := mustEngine(t, Config{Shards: 1, QueueDepth: 1})
	ctx := context.Background()
	unblock := make(chan struct{})
	release := make(chan struct{})
	e.shards[0].ops <- func() { close(release); <-unblock }
	<-release
	if err := e.Ingest(ctx, "alice", commute(0)[:1]); err != nil {
		t.Fatal(err) // fills the queue
	}
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	err := e.Ingest(cctx, "alice", commute(0)[1:2])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("backpressured ingest returned %v, want deadline exceeded", err)
	}
	close(unblock)
}

func TestConfigRejectsMismatchedReferencePattern(t *testing.T) {
	refs, err := NewReferences(core.PatternMovement, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Anchor: testAnchor, References: refs}) // engine runs PatternRegion
	if err == nil {
		t.Fatal("pattern mismatch accepted")
	}
}
