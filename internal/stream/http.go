package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"locwatch/internal/geo"
	"locwatch/internal/obs"
	"locwatch/internal/privlog"
	"locwatch/internal/trace"
)

// Fix is the wire form of one GPS fix. Coordinates exist on the wire
// by definition (this is the ingest boundary the paper's threat model
// is about); they are decoded straight into trace.Point and never
// formatted into a log line or error — privlog guards every
// diagnostic path out of this package.
type Fix struct {
	Lat float64   `json:"lat"`
	Lon float64   `json:"lon"`
	T   time.Time `json:"t"`
}

// IngestRequest is the POST /v1/users/{id}/fixes body.
type IngestRequest struct {
	Fixes []Fix `json:"fixes"`
}

// IngestResponse acknowledges an accepted batch.
type IngestResponse struct {
	Accepted int `json:"accepted"`
}

// errorBody is the JSON error envelope. Messages are static or carry
// counts only — never request payload.
type errorBody struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds an ingest body: the wire form of a fix is well
// under 96 bytes, so MaxBatch fixes fit with generous slack.
const fixWireBytes = 96

// NewMux routes the service API onto the engine:
//
//	POST   /v1/users/{id}/fixes  ingest a batch of fixes
//	GET    /v1/users/{id}/risk   the user's current risk snapshot
//	DELETE /v1/users/{id}        evict (park) the user's state
//	GET    /v1/users             all known user ids
//	GET    /healthz              liveness
//
// When reg is non-nil its diagnostic endpoints (/metrics, /debug/vars,
// /debug/pprof/) are mounted too. logger may be nil (silent).
func NewMux(e *Engine, reg *obs.Registry, logger *privlog.Logger) *http.ServeMux {
	mux := http.NewServeMux()
	a := &api{eng: e, log: logger}
	mux.HandleFunc("POST /v1/users/{id}/fixes", a.ingest)
	mux.HandleFunc("GET /v1/users/{id}/risk", a.risk)
	mux.HandleFunc("DELETE /v1/users/{id}", a.evict)
	mux.HandleFunc("GET /v1/users", a.users)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if reg != nil {
		mux.Handle("/metrics", obs.NewHandler(reg))
		mux.Handle("/debug/", obs.NewHandler(reg))
	}
	return mux
}

type api struct {
	eng *Engine
	log *privlog.Logger
}

func (a *api) logf(c privlog.Category, format string, args ...any) {
	if a.log != nil {
		a.log.Printf(c, format, args...)
	}
}

func (a *api) ingest(w http.ResponseWriter, r *http.Request) {
	userID := r.PathValue("id")
	body := http.MaxBytesReader(w, r.Body, int64(a.eng.cfg.MaxBatch+1)*fixWireBytes+1024)
	var req IngestRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "request body too large"})
			return
		}
		a.logf(privlog.CategoryParse, "ingest user %s: malformed body", userID)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed JSON body"})
		return
	}
	// Drain any trailing bytes so keep-alive connections stay reusable.
	_, _ = io.Copy(io.Discard, body) // best-effort drain
	pts := make([]trace.Point, len(req.Fixes))
	for i, f := range req.Fixes {
		p := geo.LatLon{Lat: f.Lat, Lon: f.Lon}
		if !p.Valid() {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("fix %d: coordinates out of range", i)})
			return
		}
		pts[i] = trace.Point{Pos: p, T: f.T}
	}
	if err := a.eng.Ingest(r.Context(), userID, pts); err != nil {
		switch {
		case errors.Is(err, ErrBatchTooLarge):
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("batch of %d fixes exceeds limit %d", len(pts), a.eng.cfg.MaxBatch)})
		case errors.Is(err, ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server shutting down"})
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away while we were backpressured; nothing to say.
		default:
			a.logf(privlog.CategoryNetwork, "ingest user %s: %v", userID, err)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Accepted: len(pts)})
}

func (a *api) risk(w http.ResponseWriter, r *http.Request) {
	risk, err := a.eng.Risk(r.Context(), r.PathValue("id"))
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownUser):
			writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown user"})
		case errors.Is(err, ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server shutting down"})
		default:
			// Poisoned user (e.g. out-of-order fixes): the stored error is
			// already privlog-built, safe to surface.
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, risk)
}

func (a *api) evict(w http.ResponseWriter, r *http.Request) {
	found, err := a.eng.Evict(r.Context(), r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server shutting down"})
		return
	}
	if !found {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown user"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *api) users(w http.ResponseWriter, r *http.Request) {
	ids, err := a.eng.Users(r.Context())
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server shutting down"})
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string][]string{"users": ids})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // nothing to do about a dead client
}

// Server couples an http.Server to an Engine with the shutdown order
// that makes draining safe: stop accepting, drain in-flight HTTP
// (every accepted ingest reaches its shard), then close the engine
// (shards drain their queues). An ingest acknowledged with 202 is
// therefore always reflected in the final state.
type Server struct {
	HTTP   *http.Server
	Engine *Engine
}

// NewServer builds a ready-to-run Server listening on addr.
func NewServer(addr string, e *Engine, reg *obs.Registry, logger *privlog.Logger) *Server {
	return &Server{
		HTTP: &http.Server{
			Addr:              addr,
			Handler:           NewMux(e, reg, logger),
			ReadHeaderTimeout: 10 * time.Second,
		},
		Engine: e,
	}
}

// Shutdown gracefully stops the server: HTTP drain first, engine close
// second. The engine error wins only if HTTP drained cleanly.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.HTTP.Shutdown(ctx)
	//lint:ignore ctxflow the engine drain is bounded by already-queued work and must complete: every 202-acknowledged ingest has to reach shard state
	engErr := s.Engine.Close()
	if httpErr != nil {
		return httpErr
	}
	return engErr
}
