package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"locwatch/internal/trace"
)

func testServer(t *testing.T, cfg Config) (*Engine, *httptest.Server) {
	t.Helper()
	e := mustEngine(t, cfg)
	ts := httptest.NewServer(NewMux(e, nil, nil))
	t.Cleanup(ts.Close)
	return e, ts
}

func fixesBody(pts []trace.Point) *bytes.Buffer {
	req := IngestRequest{Fixes: make([]Fix, len(pts))}
	for i, p := range pts {
		req.Fixes[i] = Fix{Lat: p.Pos.Lat, Lon: p.Pos.Lon, T: p.T}
	}
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(req) //nolint:errcheck // in-memory
	return &buf
}

func postJSON(t *testing.T, url string, body io.Reader) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHTTPIngestAndRisk(t *testing.T) {
	e, ts := testServer(t, Config{})
	pts := commute(0)
	resp := postJSON(t, ts.URL+"/v1/users/alice/fixes", fixesBody(pts))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var ack IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != len(pts) {
		t.Fatalf("accepted %d, want %d", ack.Accepted, len(pts))
	}
	if err := e.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	rr, err := http.Get(ts.URL + "/v1/users/alice/risk")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("risk status %d", rr.StatusCode)
	}
	if ct := rr.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var risk Risk
	if err := json.NewDecoder(rr.Body).Decode(&risk); err != nil {
		t.Fatal(err)
	}
	if risk.UserID != "alice" || risk.Fixes != len(pts) || risk.Visits == 0 {
		t.Fatalf("risk = %+v", risk)
	}
}

func TestHTTPMalformedJSON400(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, body := range []string{
		"{", "[]", `{"fixes": "nope"}`, "",
		// Well-formed JSON, out-of-range coordinates: same 400.
		`{"fixes":[{"lat":999,"lon":0,"t":"2026-03-02T08:00:00Z"}]}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/users/alice/fixes", strings.NewReader(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
			t.Fatalf("body %q: error envelope %+v, %v", body, eb, err)
		}
	}
}

func TestHTTPUnknownUser404(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/users/nobody/risk")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("risk status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/users/nobody", nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	if dr.StatusCode != http.StatusNotFound {
		t.Fatalf("evict status %d, want 404", dr.StatusCode)
	}
}

func TestHTTPOversizedBatch413(t *testing.T) {
	_, ts := testServer(t, Config{MaxBatch: 4})
	// More fixes than MaxBatch but a small body: rejected by count.
	resp := postJSON(t, ts.URL+"/v1/users/alice/fixes", fixesBody(commute(0)[:5]))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("count path: status %d, want 413", resp.StatusCode)
	}
	// A giant body: rejected by MaxBytesReader before full decode.
	big := fmt.Sprintf(`{"fixes":[%s]}`, strings.Repeat(`{"lat":1,"lon":2,"t":"2026-03-02T08:00:00Z"},`, 4096))
	resp = postJSON(t, ts.URL+"/v1/users/alice/fixes", strings.NewReader(big[:len(big)-3]+"]}"))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("bytes path: status %d, want 413", resp.StatusCode)
	}
}

func TestHTTPEvictAndUsers(t *testing.T) {
	_, ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/v1/users/alice/fixes", fixesBody(commute(0)[:8]))
	postJSON(t, ts.URL+"/v1/users/bob/fixes", fixesBody(commute(50)[:8]))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/users/alice", nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusNoContent {
		t.Fatalf("evict status %d, want 204", dr.StatusCode)
	}
	ur, err := http.Get(ts.URL + "/v1/users")
	if err != nil {
		t.Fatal(err)
	}
	defer ur.Body.Close()
	var users struct {
		Users []string `json:"users"`
	}
	if err := json.NewDecoder(ur.Body).Decode(&users); err != nil {
		t.Fatal(err)
	}
	// Eviction parks, it does not forget: both users still listed.
	if len(users.Users) != 2 || users.Users[0] != "alice" || users.Users[1] != "bob" {
		t.Fatalf("users = %v", users.Users)
	}
}

func TestHTTPPoisonedUser409(t *testing.T) {
	e, ts := testServer(t, Config{})
	pts := commute(0)
	postJSON(t, ts.URL+"/v1/users/alice/fixes", fixesBody(pts[10:12]))
	postJSON(t, ts.URL+"/v1/users/alice/fixes", fixesBody(pts[:2])) // rewind
	if err := e.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/users/alice/risk")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	// The privtaint contract end to end: the served error must not leak
	// a coordinate (our synthetic fixes sit near lat 39.99).
	if strings.Contains(eb.Error, "39.9") {
		t.Fatalf("error leaked a coordinate: %q", eb.Error)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestGracefulShutdownDrainsInflightIngest pins the Server's drain
// order: an ingest whose body is still streaming when Shutdown begins
// must complete with 202 (HTTP drain), and its fixes must reach shard
// state before the engine closes (engine drain second).
func TestGracefulShutdownDrainsInflightIngest(t *testing.T) {
	e := mustEngine(t, Config{})
	srv := NewServer("127.0.0.1:0", e, nil, nil)
	ln, err := net.Listen("tcp", srv.HTTP.Addr)
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.HTTP.Serve(ln) }()

	pr, pw := io.Pipe()
	reqDone := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, "http://"+ln.Addr().String()+"/v1/users/alice/fixes", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			reqDone <- nil
			return
		}
		reqDone <- resp
	}()

	body := fixesBody(commute(0)[:6]).Bytes()
	half := len(body) / 2
	if _, err := pw.Write(body[:half]); err != nil {
		t.Fatal(err)
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()

	// Shutdown is now waiting on the in-flight request; finish it.
	time.Sleep(20 * time.Millisecond)
	if _, err := pw.Write(body[half:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	resp := <-reqDone
	if resp == nil {
		t.Fatal("in-flight request failed")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("in-flight ingest status %d, want 202 (killed instead of drained)", resp.StatusCode)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("serve: %v", err)
	}
	// After shutdown the engine is closed — and everything acknowledged
	// before it was accepted.
	if err := e.Ingest(context.Background(), "alice", commute(0)[:1]); err != ErrClosed {
		t.Fatalf("engine not closed after shutdown: %v", err)
	}
}
