package stream

import (
	"context"
	"math/rand"
	"testing"
)

// TestBoundedMemoryUnderEviction is the bounded-memory property:
// randomized ingest with periodic eviction pins the engine's retained
// extraction bytes to the live window contents, independent of how
// many fixes have ever flowed through. The footprint right after a
// full eviction pass must (a) equal exactly 24 bytes per live window
// point and (b) stop growing with stream length — the epoch-10
// footprint may not exceed the largest early-epoch footprint.
func TestBoundedMemoryUnderEviction(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234} {
		rng := rand.New(rand.NewSource(seed))
		e := mustEngine(t, Config{Shards: 4, RecomputeEvery: 256})
		ctx := context.Background()
		const users = 6
		gens := make([]*gen, users)
		ids := make([]string, users)
		for u := range gens {
			ids[u] = UserID(u)
			gens[u] = newGen(seed*100+int64(u), float64(u)*250)
		}
		var maxEarly int
		const epochs = 10
		for epoch := 0; epoch < epochs; epoch++ {
			for u := range gens {
				// Randomized batch sizing per user per epoch.
				for fed, want := 0, 200+rng.Intn(600); fed < want; {
					n := 1 + rng.Intn(64)
					if fed+n > want {
						n = want - fed
					}
					if err := e.Ingest(ctx, ids[u], gens[u].next(n)); err != nil {
						t.Fatal(err)
					}
					fed += n
				}
			}
			for _, id := range ids {
				if _, err := e.Evict(ctx, id); err != nil {
					t.Fatal(err)
				}
			}
			fp, err := e.Footprint(ctx)
			if err != nil {
				t.Fatal(err)
			}
			// Bound (a): a parked population retains at most the points of
			// each user's current open stay/transition windows. Windows see
			// at most ~1h of 30s fixes here; 2 windows × 6 users × 240
			// points × 24 bytes ≈ 70 KiB is a generous ceiling.
			if fp > 6*2*240*24 {
				t.Fatalf("seed %d epoch %d: parked footprint %d bytes exceeds live-window bound", seed, epoch, fp)
			}
			if epoch < epochs/2 {
				if fp > maxEarly {
					maxEarly = fp
				}
			} else if fp > maxEarly {
				// Bound (b): no growth with stream length.
				t.Fatalf("seed %d epoch %d: footprint %d grew past early maximum %d", seed, epoch, fp, maxEarly)
			}
		}
		e.Close()
	}
}

// TestIngestAllocBudget pins the steady-state allocation rate of the
// hot ingest path: one 64-fix batch must cost O(1) allocations — the
// submit closure and bookkeeping — not O(fixes). Window growth and
// place creation amortize to zero over a long stay; the budget leaves
// room for the occasional pooled-buffer refill after a GC.
func TestIngestAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting; skipped with -short")
	}
	e := mustEngine(t, Config{Shards: 1, QueueDepth: 1, RecomputeEvery: 1 << 30})
	ctx := context.Background()
	g := newGen(42, 0)
	// Warm up pools, maps, and window capacity.
	for i := 0; i < 50; i++ {
		if err := e.Ingest(ctx, "alloc", g.next(64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SyncAll(ctx); err != nil {
		t.Fatal(err)
	}
	// QueueDepth 1 keeps the producer and shard in lockstep so the
	// measurement covers the shard-side feed work too.
	allocs := testing.AllocsPerRun(200, func() {
		if err := e.Ingest(ctx, "alloc", g.next(64)); err != nil {
			t.Fatal(err)
		}
	})
	if err := e.SyncAll(ctx); err != nil {
		t.Fatal(err)
	}
	const budget = 24
	if allocs > budget {
		t.Fatalf("ingest of a 64-fix batch costs %.1f allocs, budget %d", allocs, budget)
	}
}
