package stream

import "locwatch/internal/obs"

// engineMetrics holds the streaming engine's instruments. The zero
// value — every pointer nil — is the disabled state: all instrument
// methods no-op on nil receivers (see internal/obs), so a Config
// without a registry pays one branch per observation and nothing else.
// Observe-only (DESIGN.md §8): instruments are written after decisions
// and never read back, so enabling them cannot change an emitted bit.
type engineMetrics struct {
	fixes      *obs.Counter // fixes successfully fed into builders
	batches    *obs.Counter // accepted Ingest calls
	rejects    *obs.Counter // fixes dropped on poisoned users
	evictions  *obs.Counter // Evict calls that parked a live user
	recomputes *obs.Counter // risk snapshot recomputations

	users      *obs.Gauge // distinct users with shard state
	queueDepth *obs.Gauge // ops pending across all shard queues
	parked     *obs.Gauge // users currently parked (evicted)

	batchFixes       *obs.Histogram // fixes per accepted Ingest batch
	recomputeSeconds *obs.Histogram // risk recomputation latency

	tracer *obs.Tracer
	root   *obs.Span
}

// batchBuckets spans the useful ingest-batch sizes: single fixes from
// live producers up to the default MaxBatch a replay driver sends.
var batchBuckets = []float64{1, 8, 64, 256, 1024, 4096}

// newEngineMetrics creates the engine's instruments on r (nil r
// disables everything: a nil registry hands out nil instruments).
func newEngineMetrics(r *obs.Registry) engineMetrics {
	return engineMetrics{
		fixes:            r.Counter("locwatch_stream_fixes_total"),
		batches:          r.Counter("locwatch_stream_batches_total"),
		rejects:          r.Counter("locwatch_stream_rejected_fixes_total"),
		evictions:        r.Counter("locwatch_stream_evictions_total"),
		recomputes:       r.Counter("locwatch_stream_recomputes_total"),
		users:            r.Gauge("locwatch_stream_users"),
		queueDepth:       r.Gauge("locwatch_stream_shard_queue_depth"),
		parked:           r.Gauge("locwatch_stream_parked_users"),
		batchFixes:       r.Histogram("locwatch_stream_batch_fixes", batchBuckets),
		recomputeSeconds: r.Histogram("locwatch_stream_recompute_seconds", obs.DefLatencyBuckets),
		tracer:           r.Tracer(),
	}
}
