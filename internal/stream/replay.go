package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"locwatch/internal/mobility"
	"locwatch/internal/trace"
)

// UserID is the canonical mapping from a mobility.World user index to
// the streaming service's string user id. Every producer — the replay
// driver, locwatchd, difftest — uses it so the batch and stream sides
// of a comparison agree on identity.
func UserID(i int) string { return fmt.Sprintf("u%03d", i) }

// ReplayConfig parameterizes a Replay run.
type ReplayConfig struct {
	// Interval is the GPS sampling interval fixes are generated at.
	Interval time.Duration
	// MinBatch and MaxBatch bound the randomized ingest batch size;
	// each batch draws its size uniformly from [MinBatch, MaxBatch].
	// Defaults: 1 and 64.
	MinBatch, MaxBatch int
	// Seed drives the batch-size and interleaving randomness. Replay is
	// deterministic in (world, cfg): the same seed replays the same
	// schedule — which, by the engine's batch-equivalence contract,
	// must not matter to the final state anyway.
	Seed int64
	// EvictEvery, when positive, parks a randomly chosen user after
	// every EvictEvery accepted batches, exercising the eviction path
	// mid-stream. Zero disables eviction.
	EvictEvery int
	// Users restricts the replay to these world user indices; nil
	// replays the whole population.
	Users []int
}

// ReplayStats summarizes a finished replay.
type ReplayStats struct {
	Users     int
	Fixes     int
	Batches   int
	Evictions int
}

// Replay streams the world's traces into the engine: per-user fixes in
// time order (the engine's ingest contract), but chopped into
// randomly-sized batches and interleaved across users in random order,
// with optional mid-stream eviction. It is both locwatchd's trace
// driver and the adversarial schedule generator of the differential
// harness — the randomization deliberately explores schedules that
// must all converge to the same final state.
//
// Replay does not finalize; callers decide when the stream ends
// (difftest calls FinalizeAll, locwatchd keeps serving live).
func Replay(ctx context.Context, e *Engine, w *mobility.World, cfg ReplayConfig) (ReplayStats, error) {
	if cfg.Interval <= 0 {
		return ReplayStats{}, errors.New("stream: replay: interval must be positive")
	}
	if cfg.MinBatch <= 0 {
		cfg.MinBatch = 1
	}
	if cfg.MaxBatch < cfg.MinBatch {
		cfg.MaxBatch = cfg.MinBatch + 63
	}
	users := cfg.Users
	if users == nil {
		users = make([]int, w.NumUsers())
		for i := range users {
			users[i] = i
		}
	}

	// One open source per user; feeders drop out as they hit EOF.
	type feeder struct {
		id  string
		src trace.Source
	}
	live := make([]*feeder, 0, len(users))
	for _, u := range users {
		src, err := w.Trace(u, cfg.Interval)
		if err != nil {
			return ReplayStats{}, fmt.Errorf("stream: replay user %d: %w", u, err)
		}
		live = append(live, &feeder{id: UserID(u), src: src})
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := ReplayStats{Users: len(users)}
	batch := make([]trace.Point, 0, cfg.MaxBatch)
	for len(live) > 0 {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		i := rng.Intn(len(live))
		f := live[i]
		want := cfg.MinBatch + rng.Intn(cfg.MaxBatch-cfg.MinBatch+1)
		batch = batch[:0]
		done := false
		for len(batch) < want {
			p, err := f.src.Next()
			if err == io.EOF {
				done = true
				break
			}
			if err != nil {
				return stats, fmt.Errorf("stream: replay user %s: %w", f.id, err)
			}
			batch = append(batch, p)
		}
		if len(batch) > 0 {
			if err := e.Ingest(ctx, f.id, batch); err != nil {
				return stats, err
			}
			stats.Fixes += len(batch)
			stats.Batches++
			if cfg.EvictEvery > 0 && stats.Batches%cfg.EvictEvery == 0 {
				victim := UserID(users[rng.Intn(len(users))])
				if _, err := e.Evict(ctx, victim); err != nil {
					return stats, err
				}
				stats.Evictions++
			}
		}
		if done {
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return stats, nil
}
