package stream

import (
	"errors"
	"fmt"

	"locwatch/internal/core"
)

// Risk is one user's live privacy-risk snapshot — the paper's four
// metrics served as JSON. It never carries a coordinate: places and
// regions are counted, not listed, which is what lets the service
// expose risk without itself becoming the leak it measures.
type Risk struct {
	UserID string `json:"user"`
	// Fixes is the number of ingested fixes the snapshot covers;
	// StaleFixes counts fixes ingested since (0 when fresh). Set by
	// the serving shard, not ComputeRisk.
	Fixes      int `json:"fixes"`
	StaleFixes int `json:"stale_fixes"`
	// Visits counts extracted PoI visits; PoITotal is the paper's
	// PoI_total (distinct canonical places), PoISensitive the places
	// visited at most SensitiveMaxVisits times.
	Visits       int `json:"visits"`
	PoITotal     int `json:"poi_total"`
	PoISensitive int `json:"poi_sensitive"`
	// HisBin is 1 when the collected stream fits the user's reference
	// profile (a breach), 0 otherwise or without references.
	HisBin int `json:"his_bin"`
	// Matches and DegAnonymity come from matching the stream against
	// the whole candidate set: how many candidate profiles fit, and
	// the entropy-normalized degree of anonymity (1 = the adversary
	// learned nothing, 0 = uniquely identified).
	Matches      int     `json:"matches"`
	DegAnonymity float64 `json:"deg_anonymity"`
	// Finalized marks snapshots taken after the stream was flushed
	// (open stays closed) — the state batch runs are compared against.
	Finalized bool `json:"finalized"`
}

// References is the scoring side of risk: per-user reference profiles
// for the His_bin self-test and the candidate set the identification
// adversary matches against. Profiles must be finalized (built by
// core.BuildProfile or ProfileBuilder.Profile) and share the engine's
// anchor; finalized profiles are read-only here, so one References is
// safe for concurrent use by all shards.
type References struct {
	pattern core.Pattern
	byUser  map[string]*core.Profile
	adv     *core.Adversary
}

// NewReferences builds the scoring set. byUser maps user id to that
// user's own reference profile (His_bin); candidates is the
// identification adversary's profile set (Deg_anonymity). Either side
// may be empty: an empty byUser serves His_bin 0, an empty candidate
// set serves maximal anonymity.
func NewReferences(pattern core.Pattern, byUser map[string]*core.Profile, candidates []*core.Profile) (*References, error) {
	r := &References{pattern: pattern, byUser: byUser}
	if len(candidates) > 0 {
		adv, err := core.NewAdversary(candidates)
		if err != nil {
			return nil, fmt.Errorf("stream: references: %w", err)
		}
		r.adv = adv
	}
	return r, nil
}

// Pattern returns the histogram pattern the references score under.
func (r *References) Pattern() core.Pattern {
	if r == nil {
		return core.PatternRegion
	}
	return r.pattern
}

// ComputeRisk scores one profile. It is the single scoring path both
// the streaming shards and the batch side of the differential harness
// call, so stream-vs-batch comparisons exercise identical code on
// both sides. refs may be nil (exposure metrics only).
func ComputeRisk(userID string, prof *core.Profile, refs *References, sensitiveMaxVisits int, pattern core.Pattern) (Risk, error) {
	risk := Risk{
		UserID:       userID,
		Visits:       prof.NumVisits(),
		PoITotal:     prof.NumPlaces(),
		PoISensitive: len(prof.SensitivePlaces(sensitiveMaxVisits)),
		DegAnonymity: 1, // no adversary: nothing learned
	}
	if refs == nil {
		return risk, nil
	}
	if ref := refs.byUser[userID]; ref != nil {
		hb, err := ref.HisBin(prof, pattern)
		if err != nil {
			return Risk{}, fmt.Errorf("stream: his_bin for user %q: %w", userID, err)
		}
		risk.HisBin = hb
	}
	if refs.adv != nil {
		id, err := refs.adv.Identify(prof, pattern)
		if err != nil {
			// A degenerate observation is "no information", not a
			// service failure.
			if errors.Is(err, core.ErrNoProfile) {
				return risk, nil
			}
			return Risk{}, fmt.Errorf("stream: identify user %q: %w", userID, err)
		}
		risk.Matches = id.Matches
		risk.DegAnonymity = id.DegAnonymity
	}
	return risk, nil
}
