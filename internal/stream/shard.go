package stream

import (
	"context"

	"locwatch/internal/core"
	"locwatch/internal/privlog"
	"locwatch/internal/trace"
)

// userState is one user's streaming state, owned by exactly one shard
// goroutine — no field is ever touched from outside it.
type userState struct {
	builder *core.ProfileBuilder
	fixes   int // fixes fed so far
	dirty   int // fixes since the last risk recompute
	err     error
	risk    Risk
	hasRisk bool
	parked  bool
}

// shard owns one slice of the user population. All state mutation
// happens inside run, which consumes the ops queue in FIFO order —
// that single consumer is what turns "arrival order" into "feed
// order" and makes the engine batch-equivalent (DESIGN.md §9).
type shard struct {
	eng  *Engine
	ops  chan func()
	done chan struct{}

	// users is goroutine-local to run (and to closures executed by
	// run); the engine reads it only through submitted ops.
	users map[string]*userState
}

func newShard(e *Engine, id int) *shard {
	s := &shard{
		eng:   e,
		ops:   make(chan func(), e.cfg.QueueDepth),
		done:  make(chan struct{}),
		users: make(map[string]*userState),
	}
	go s.run()
	return s
}

// run is the shard goroutine: execute ops until the queue closes.
func (s *shard) run() {
	defer close(s.done)
	for op := range s.ops {
		s.eng.obsm.queueDepth.Dec()
		op()
	}
}

// submit enqueues op, blocking while the queue is full (backpressure)
// unless ctx gives up first. The caller must hold the engine's read
// lock, which is what excludes close.
func (s *shard) submit(ctx context.Context, op func()) error {
	select {
	case s.ops <- op:
		s.eng.obsm.queueDepth.Inc()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops the shard after draining queued ops. Only Engine.Close
// calls it, after publishing closed so no submit can race the close.
func (s *shard) close() {
	close(s.ops)
	<-s.done
}

// state returns the user's state, creating it on first ingest.
func (s *shard) state(userID string) *userState {
	st := s.users[userID]
	if st == nil {
		// New's probe builder proved these params construct; a failure
		// here would be a programming error, so it poisons the user
		// rather than panicking the shard.
		b, err := core.NewProfileBuilder(s.eng.cfg.Anchor, s.eng.cfg.Core)
		st = &userState{builder: b}
		if err != nil {
			st.err = privlog.New(err).Component("stream").Category(privlog.CategoryInternal).Build()
		}
		s.users[userID] = st
		s.eng.obsm.users.Inc()
	}
	return st
}

// ingest feeds one batch for one user; runs inside the shard
// goroutine. An out-of-order fix poisons the user (the error is
// served on query), not the shard: one misbehaving producer must not
// take down its shard-mates.
func (s *shard) ingest(userID string, fixes []trace.Point) {
	st := s.state(userID)
	if st.err != nil {
		s.eng.obsm.rejects.Add(uint64(len(fixes)))
		return
	}
	if st.parked {
		st.parked = false
		s.eng.obsm.parked.Dec()
	}
	fed := 0
	for _, p := range fixes {
		if err := st.builder.Feed(p); err != nil {
			// The poi error carries timestamps only, never coordinates,
			// but route it through privlog anyway: this is the service
			// boundary the privtaint analyzer audits.
			st.err = privlog.New(err).Component("stream").Category(privlog.CategorySim).
				Context("user", userID).Build()
			s.eng.obsm.rejects.Add(uint64(len(fixes) - fed))
			break
		}
		fed++
	}
	st.fixes += fed
	st.dirty += fed
	s.eng.obsm.fixes.Add(uint64(fed))
	// Debounced scheduler: recompute once enough new evidence piled
	// up. Queries and SyncAll cover the tail below the threshold.
	if st.dirty >= s.eng.cfg.RecomputeEvery {
		s.recompute(userID, st, false)
	}
}

// recompute refreshes the user's risk snapshot from the live profile
// (Peek — non-destructive) or, on finalize, from the flushed profile.
func (s *shard) recompute(userID string, st *userState, finalize bool) {
	if st.err != nil {
		return
	}
	t := s.eng.obsm.recomputeSeconds.Timer()
	defer t.Stop()
	prof := st.builder.Peek()
	if finalize {
		prof = st.builder.Profile()
	}
	risk, err := ComputeRisk(userID, prof, s.eng.cfg.References, s.eng.cfg.SensitiveMaxVisits, s.eng.cfg.Pattern)
	if err != nil {
		st.err = privlog.New(err).Component("stream").Category(privlog.CategorySim).
			Context("user", userID).Build()
		return
	}
	risk.Fixes = st.fixes
	risk.Finalized = finalize
	st.risk = risk
	st.hasRisk = true
	st.dirty = 0
	s.eng.obsm.recomputes.Inc()
}

// risk serves the user's snapshot, computing one on first query.
func (s *shard) risk(userID string) (Risk, error) {
	st := s.users[userID]
	if st == nil {
		return Risk{}, ErrUnknownUser
	}
	if st.err != nil {
		return Risk{}, st.err
	}
	if !st.hasRisk {
		s.recompute(userID, st, false)
		if st.err != nil {
			return Risk{}, st.err
		}
	}
	r := st.risk
	r.StaleFixes = st.dirty
	return r, nil
}

// evict parks a user: pooled scratch released, buffers shrunk to live
// points, everything else untouched. Reports whether the user exists.
func (s *shard) evict(userID string) bool {
	st := s.users[userID]
	if st == nil {
		return false
	}
	if !st.parked {
		st.builder.Park()
		st.parked = true
		s.eng.obsm.parked.Inc()
		s.eng.obsm.evictions.Inc()
	}
	return true
}

// syncDirty recomputes every dirty user's snapshot.
func (s *shard) syncDirty() {
	for id, st := range s.users {
		if st.err == nil && (st.dirty > 0 || !st.hasRisk) {
			s.recompute(id, st, false)
		}
	}
}

// finalizeAll flushes every user's open stay and recomputes — the
// batch pipeline's end-of-stream Flush, applied shard-wide.
func (s *shard) finalizeAll() {
	for id, st := range s.users {
		if st.err == nil {
			s.recompute(id, st, true)
		}
	}
}
