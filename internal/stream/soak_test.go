package stream

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"locwatch/internal/core"
	"locwatch/internal/trace"
)

// gen lazily extends one user's synthetic trace: alternating stays and
// walks with rng-chosen dwell and direction, timestamps strictly
// monotone — an endless well-formed producer for soak runs.
type gen struct {
	tb  *tb
	rng *rand.Rand
	cur int
}

func newGen(seed int64, offsetMeters float64) *gen {
	return &gen{tb: newTB(offsetMeters), rng: rand.New(rand.NewSource(seed))}
}

func (g *gen) next(n int) []trace.Point {
	for len(g.tb.pts)-g.cur < n {
		g.tb.stay(time.Duration(12+g.rng.Intn(48)) * time.Minute)
		g.tb.walk(float64(g.rng.Intn(360)), 300+float64(g.rng.Intn(600)))
	}
	out := g.tb.pts[g.cur : g.cur+n]
	g.cur += n
	return out
}

// TestSoakConcurrentIngestReadEvict is the race-detector soak: per-user
// ingesters, risk/users/footprint readers, and a periodic evictor all
// hammer one engine concurrently; afterwards every user's finalized
// state must equal an independent batch rebuild of exactly the points
// that were ingested. Run it under -race (CI does).
func TestSoakConcurrentIngestReadEvict(t *testing.T) {
	const (
		users          = 12
		batchesPerUser = 60
		batchSize      = 40
	)
	e := mustEngine(t, Config{Shards: 4, QueueDepth: 8, RecomputeEvery: 128})
	ctx := context.Background()

	ids := make([]string, users)
	gens := make([]*gen, users)
	for u := range gens {
		ids[u] = fmt.Sprintf("soak-%02d", u)
		gens[u] = newGen(int64(u)+1, float64(u)*200)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: risk + listing + footprint, until the ingesters finish.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					// Unknown-user errors are fine; shard errors are not.
					if _, err := e.Risk(ctx, ids[rng.Intn(users)]); err != nil && err != ErrUnknownUser {
						t.Error(err)
						return
					}
				case 1:
					if _, err := e.Users(ctx); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := e.Footprint(ctx); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(100 + r))
	}

	// Evictor: parks random users the whole run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(999))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Evict(ctx, ids[rng.Intn(users)]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Ingesters: one goroutine per user (per-user order preserved).
	var ing sync.WaitGroup
	for u := 0; u < users; u++ {
		ing.Add(1)
		go func(u int) {
			defer ing.Done()
			for b := 0; b < batchesPerUser; b++ {
				if err := e.Ingest(ctx, ids[u], gens[u].next(batchSize)); err != nil {
					t.Error(err)
					return
				}
			}
		}(u)
	}
	ing.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	if err := e.FinalizeAll(ctx); err != nil {
		t.Fatal(err)
	}
	// Every user's end state must equal a batch rebuild of its points.
	for u := 0; u < users; u++ {
		pts := gens[u].tb.pts[:gens[u].cur]
		want, err := core.BuildProfile(trace.NewSliceSource(pts), testAnchor, core.Params{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Risk(ctx, ids[u])
		if err != nil {
			t.Fatal(err)
		}
		if got.Fixes != len(pts) || got.Visits != want.NumVisits() || got.PoITotal != want.NumPlaces() {
			t.Fatalf("user %s: stream %+v vs batch %d visits / %d places over %d points",
				ids[u], got, want.NumVisits(), want.NumPlaces(), want.NumPoints())
		}
	}
}

// TestSoakCloseWhileBusy shuts the engine down while producers are
// mid-stream: every Ingest must return nil or ErrClosed — never panic,
// never deadlock.
func TestSoakCloseWhileBusy(t *testing.T) {
	e := mustEngine(t, Config{Shards: 2, QueueDepth: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	for u := 0; u < 8; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			g := newGen(int64(u)+50, float64(u)*150)
			for b := 0; b < 200; b++ {
				if err := e.Ingest(ctx, fmt.Sprintf("burst-%d", u), g.next(16)); err != nil {
					if err == ErrClosed {
						return
					}
					t.Error(err)
					return
				}
			}
		}(u)
	}
	time.Sleep(5 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
