// Package stream is locwatch's streaming privacy-risk engine: the
// batch experiments.Lab pipeline turned into a long-running service.
// Location fixes for many users arrive as a stream (HTTP ingest or the
// replay driver), per-user profile state lives in sharded single-
// goroutine maps with bounded queues, risk recomputation is debounced
// by an event scheduler, and live PoI_total / PoI_sensitive / His_bin
// / Deg_anonymity snapshots are served per user.
//
// The package is built around one correctness contract, proven by the
// differential harness in internal/stream/difftest: replaying a trace
// through the engine and finalizing yields profiles and risk metrics
// byte-identical to a batch core.BuildProfile run over the same
// points — for any shard count, any ingest batch sizing, any
// interleaving across users, and any mid-stream eviction schedule.
// The invariants that make this hold:
//
//   - per-user ordering: a user's fixes are fed in arrival order. Each
//     user maps to exactly one shard, each shard is one goroutine
//     consuming a FIFO queue, so arrival order is feed order.
//   - non-destructive snapshots: mid-stream risk uses
//     core.ProfileBuilder.Peek, which never flushes the extractor;
//     only Finalize (end of stream, the batch equivalent of the final
//     Flush) does.
//   - non-destructive eviction: Evict parks the builder
//     (poi.Extractor.Park), shrinking retained buffers without losing
//     a buffered point.
//
// Backpressure is the queue bound: Ingest blocks while the target
// shard's queue is full, pushing the stall back onto the producer the
// same way the Lab's bounded worker pool does onto experiments.
package stream

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"locwatch/internal/core"
	"locwatch/internal/geo"
	"locwatch/internal/obs"
	"locwatch/internal/trace"
)

// Package-level error conditions the HTTP layer maps to status codes.
var (
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("stream: engine closed")
	// ErrUnknownUser is returned for risk queries about users that
	// never ingested a fix.
	ErrUnknownUser = errors.New("stream: unknown user")
	// ErrBatchTooLarge is returned when one Ingest call exceeds
	// Config.MaxBatch fixes.
	ErrBatchTooLarge = errors.New("stream: ingest batch too large")
)

// Config parameterizes an Engine.
type Config struct {
	// Anchor is the projection anchor all profiles share; it must
	// match the anchor of any reference profiles.
	Anchor geo.LatLon
	// Core parameterizes profile construction and the His_bin test.
	Core core.Params

	// Shards is the number of independent state shards (and shard
	// goroutines). Users hash onto shards; shard count never changes
	// results, only concurrency. Defaults to 8.
	Shards int
	// QueueDepth bounds each shard's pending-batch queue; a full queue
	// blocks Ingest (backpressure). Defaults to 64.
	QueueDepth int
	// MaxBatch bounds the fixes accepted in one Ingest call (the HTTP
	// layer answers 413 beyond it). Defaults to 4096.
	MaxBatch int
	// RecomputeEvery is the debounce threshold of the risk scheduler:
	// a user's risk snapshot is recomputed after this many new fixes
	// (plus on SyncAll, Finalize, and first query). Defaults to 512.
	RecomputeEvery int
	// FlushInterval, when positive, starts a wall-clock ticker that
	// periodically recomputes every dirty user's snapshot, bounding
	// staleness for users whose streams go quiet below the debounce
	// threshold. Zero (the default) disables the ticker; timing only
	// affects snapshot freshness, never final values.
	FlushInterval time.Duration
	// SensitiveMaxVisits is the PoI_sensitive visit threshold
	// (paper: 3). Defaults to 3.
	SensitiveMaxVisits int
	// Pattern selects the histogram pattern for His_bin and
	// identification. Defaults to PatternRegion (the zero value).
	Pattern core.Pattern

	// References optionally holds the profiles risk is scored
	// against; nil serves exposure metrics only (His_bin 0, maximal
	// anonymity).
	References *References

	// Obs, when non-nil, receives the engine's metrics and spans.
	// Observe-only, as everywhere in this repository (DESIGN.md §8).
	Obs *obs.Registry
}

// WithDefaults returns c with every unset field at its documented
// default — the exact config New runs under. The difftest batch side
// applies it too, so both sides of a comparison score identically.
func (c Config) WithDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		//lint:ignore locksafe value-receiver copy, defaulted inside New before any shard goroutine exists; the engine's cfg is never written after construction
		c.MaxBatch = 4096
	}
	if c.RecomputeEvery <= 0 {
		c.RecomputeEvery = 512
	}
	if c.SensitiveMaxVisits <= 0 {
		c.SensitiveMaxVisits = 3
	}
	return c
}

// Engine is the streaming privacy-risk service core. Construct with
// New, feed with Ingest (or the replay driver), query with Risk, and
// stop with Close.
type Engine struct {
	cfg    Config
	shards []*shard
	obsm   engineMetrics

	batchPool sync.Pool // *[]trace.Point ingest buffers

	// mu serializes submissions against Close: submitters hold the
	// read half across their channel send, Close takes the write half
	// before closing the shard queues, so a send can never race a
	// close. Shard goroutines consume until close and never take mu.
	mu     sync.RWMutex
	closed bool

	tickStop chan struct{}
	tickDone chan struct{}
}

// New validates cfg and starts the shard goroutines (and the flush
// ticker when configured). Call Close when done.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	// Probe the profile params once so per-user state creation inside
	// the shards cannot fail later.
	probe, err := core.NewProfileBuilder(cfg.Anchor, cfg.Core)
	if err != nil {
		return nil, fmt.Errorf("stream: config: %w", err)
	}
	probe.Release()
	if cfg.References != nil && cfg.References.pattern != cfg.Pattern {
		return nil, fmt.Errorf("stream: references built for %v, engine runs %v", cfg.References.pattern, cfg.Pattern)
	}
	e := &Engine{
		cfg:  cfg,
		obsm: newEngineMetrics(cfg.Obs),
		batchPool: sync.Pool{New: func() any {
			buf := make([]trace.Point, 0, 256)
			return &buf
		}},
	}
	//lint:ignore locksafe written once here, before the shard goroutines below are spawned; never reassigned
	e.obsm.root = e.obsm.tracer.Start("stream_engine")
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(e, i)
	}
	if cfg.FlushInterval > 0 {
		e.tickStop = make(chan struct{})
		e.tickDone = make(chan struct{})
		go e.flushLoop()
	}
	return e, nil
}

// flushLoop periodically recomputes dirty snapshots. Pure freshness:
// the values a recompute produces do not depend on when it runs.
func (e *Engine) flushLoop() {
	defer close(e.tickDone)
	t := time.NewTicker(e.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Background context: a full queue just delays the tick.
			if err := e.SyncAll(context.Background()); err != nil {
				return // engine closing
			}
		case <-e.tickStop:
			return
		}
	}
}

// shardFor maps a user id onto its owning shard. FNV keeps the map
// deterministic across processes so difftest shard sweeps are
// reproducible.
func (e *Engine) shardFor(userID string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(userID)) // fnv.Write never errors
	return e.shards[h.Sum32()%uint32(len(e.shards))]
}

// Ingest feeds a batch of fixes for one user. Fixes must be in
// non-decreasing time order per user across all batches; violations
// poison the user (recorded, surfaced on query) rather than the
// stream. The fix slice is copied — callers may reuse it immediately.
// Ingest blocks while the target shard's queue is full (backpressure)
// and aborts with ctx's error if the caller gives up.
func (e *Engine) Ingest(ctx context.Context, userID string, fixes []trace.Point) error {
	if userID == "" {
		return errors.New("stream: empty user id")
	}
	if len(fixes) == 0 {
		return nil
	}
	if len(fixes) > e.cfg.MaxBatch {
		return fmt.Errorf("%w: %d fixes, max %d", ErrBatchTooLarge, len(fixes), e.cfg.MaxBatch)
	}
	buf := e.batchPool.Get().(*[]trace.Point)
	*buf = append((*buf)[:0], fixes...)

	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.batchPool.Put(buf)
		return ErrClosed
	}
	sh := e.shardFor(userID)
	err := sh.submit(ctx, func() {
		sh.ingest(userID, *buf)
		*buf = (*buf)[:0]
		e.batchPool.Put(buf)
	})
	if err != nil {
		e.batchPool.Put(buf)
		return err
	}
	e.obsm.batches.Inc()
	e.obsm.batchFixes.Observe(float64(len(fixes)))
	return nil
}

// Risk returns the user's current risk snapshot. The snapshot is the
// debounced one the scheduler last computed; StaleFixes reports how
// many ingested fixes it does not cover yet. A user queried before
// any snapshot exists gets one computed on the spot.
func (e *Engine) Risk(ctx context.Context, userID string) (Risk, error) {
	type reply struct {
		risk Risk
		err  error
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return Risk{}, ErrClosed
	}
	sh := e.shardFor(userID)
	ch := make(chan reply, 1)
	err := sh.submit(ctx, func() {
		r, err := sh.risk(userID)
		ch <- reply{r, err}
	})
	if err != nil {
		return Risk{}, err
	}
	select {
	case rep := <-ch:
		return rep.risk, rep.err
	case <-ctx.Done():
		return Risk{}, ctx.Err()
	}
}

// Evict parks a user's state: pooled extraction scratch is released
// and window buffers shrink to their live points, without losing any
// state — the next fix for the user resumes exactly where the stream
// left off. It reports whether the user existed.
func (e *Engine) Evict(ctx context.Context, userID string) (bool, error) {
	found := false
	err := e.onShard(ctx, e.shardFor(userID), func(s *shard) {
		found = s.evict(userID)
	})
	return found, err
}

// SyncAll recomputes the risk snapshot of every dirty user on every
// shard and returns when done — the barrier difftest and the flush
// ticker use. Values are independent of when (or whether) SyncAll
// runs between ingests; only snapshot freshness changes.
func (e *Engine) SyncAll(ctx context.Context) error {
	sp := e.obsm.root.Child("sync_all")
	defer sp.End()
	return e.eachShard(ctx, func(s *shard) { s.syncDirty() })
}

// FinalizeAll ends every user's stream: open stays are flushed (the
// batch pipeline's final Flush) and snapshots recomputed. This is the
// point after which streamed state is byte-comparable to a batch
// BuildProfile run. Users keep accepting fixes afterwards — a flush
// is a stream break, not a shutdown — but difftest finalizes exactly
// once, at end of replay.
func (e *Engine) FinalizeAll(ctx context.Context) error {
	sp := e.obsm.root.Child("finalize_all")
	defer sp.End()
	return e.eachShard(ctx, func(s *shard) { s.finalizeAll() })
}

// Users returns the ids of all users that ever ingested, sorted.
func (e *Engine) Users(ctx context.Context) ([]string, error) {
	var mu sync.Mutex
	var ids []string
	err := e.eachShard(ctx, func(s *shard) {
		mu.Lock()
		defer mu.Unlock()
		for id := range s.users {
			ids = append(ids, id)
		}
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(ids)
	return ids, nil
}

// Footprint sums the retained extraction-buffer bytes across all
// users — the quantity the bounded-memory property test pins.
func (e *Engine) Footprint(ctx context.Context) (int, error) {
	var mu sync.Mutex
	total := 0
	err := e.eachShard(ctx, func(s *shard) {
		n := 0
		for _, st := range s.users {
			n += st.builder.Footprint()
		}
		mu.Lock()
		total += n
		mu.Unlock()
	})
	return total, err
}

// Snapshot returns the user's live profile for inspection. The
// returned profile is the shard's working state: it is only safe to
// read while no more fixes arrive for the user (difftest calls it
// after FinalizeAll on a quiesced engine).
func (e *Engine) Snapshot(ctx context.Context, userID string) (*core.Profile, error) {
	var prof *core.Profile
	err := e.onShard(ctx, e.shardFor(userID), func(s *shard) {
		if st := s.users[userID]; st != nil {
			prof = st.builder.Peek()
		}
	})
	if err != nil {
		return nil, err
	}
	if prof == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
	return prof, nil
}

// onShard runs op inside one shard's goroutine and waits for it.
func (e *Engine) onShard(ctx context.Context, sh *shard, op func(*shard)) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	done := make(chan struct{})
	if err := sh.submit(ctx, func() {
		defer close(done)
		op(sh)
	}); err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// eachShard runs op inside every shard's goroutine and waits for all.
func (e *Engine) eachShard(ctx context.Context, op func(*shard)) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	var wg sync.WaitGroup
	errs := make([]error, len(e.shards))
	for i, sh := range e.shards {
		i, sh := i, sh
		wg.Add(1)
		if err := sh.submit(ctx, func() {
			defer wg.Done()
			op(sh)
		}); err != nil {
			errs[i] = err
			wg.Done()
		}
	}
	//lint:ignore ctxflow,blockhold the barrier must not abandon submitted ops: each op was accepted under ctx, the shards drain without taking Engine.mu, so Wait is bounded by queued work and the held read lock only fences off Close
	wg.Wait()
	return errors.Join(errs...)
}

// Close drains every shard queue and stops the shard goroutines (and
// the flush ticker). Idempotent; methods return ErrClosed afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	// No new submissions can start now (closed is set under the write
	// lock every submitter reads under); stop the ticker, then let the
	// shards drain what is queued.
	if e.tickStop != nil {
		close(e.tickStop)
		<-e.tickDone
	}
	for _, sh := range e.shards {
		sh.close()
	}
	e.obsm.root.End()
	return nil
}
