package plt

import (
	"strings"
	"testing"
)

// FuzzRead checks that the PLT parser never panics and that whatever
// it accepts round-trips through the writer.
func FuzzRead(f *testing.F) {
	f.Add(sampleFile)
	f.Add("")
	f.Add("Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\nx\n0\n")
	f.Add(strings.Repeat("a,b,c,d,e,f,g\n", 10))
	f.Add("1\n2\n3\n4\n5\n6\n39.9,116.4,0,0,40097.5,2009-10-11,14:04:30\n")
	f.Add("1\n2\n3\n4\n5\n6\n999,116.4,0,0,40097.5,2009-10-11,14:04:30\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must serialize and re-parse to the same size.
		var sb strings.Builder
		if err := Write(&sb, tr.Points); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed size: %d → %d", tr.Len(), back.Len())
		}
	})
}
