// Package plt reads and writes the GeoLife PLT trajectory format, so
// the library can consume the real GeoLife dataset the paper evaluates
// on, and so the synthetic substitute can be written in the identical
// on-disk layout (Data/<user>/Trajectory/<stamp>.plt).
//
// A PLT file has six header lines (ignored on read, reproduced on
// write) followed by one record per fix:
//
//	lat,lon,0,altitudeFt,daysSince1899,date,time
//
// e.g. 39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30.
// Timestamps are interpreted in UTC, matching the GeoLife user guide.
package plt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"locwatch/internal/geo"
	"locwatch/internal/privlog"
	"locwatch/internal/trace"
)

// header is the fixed six-line preamble GeoLife files carry.
const header = "Geolife trajectory\n" +
	"WGS 84\n" +
	"Altitude is in Feet\n" +
	"Reserved 3\n" +
	"0,2,255,My Track,0,0,2,8421376\n" +
	"0\n"

// headerLines is the number of preamble lines to skip on read.
const headerLines = 6

// excelEpoch is day zero of the PLT serial-date column (1899-12-30).
var excelEpoch = time.Date(1899, 12, 30, 0, 0, 0, 0, time.UTC)

// ErrBadRecord wraps per-line parse failures.
var ErrBadRecord = errors.New("plt: malformed record")

// Read parses a PLT stream into a Trace. Lines that fail to parse
// return an error wrapping ErrBadRecord with the line number.
func Read(r io.Reader) (*trace.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	tr := &trace.Trace{}
	line := 0
	for sc.Scan() {
		line++
		if line <= headerLines {
			continue
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		p, err := parseRecord(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		tr.Points = append(tr.Points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("plt: read: %w", err)
	}
	tr.Sort()
	return tr, nil
}

func parseRecord(text string) (trace.Point, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 7 {
		return trace.Point{}, fmt.Errorf("%w: %d fields", ErrBadRecord, len(fields))
	}
	lat, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return trace.Point{}, fmt.Errorf("%w: latitude: %v", ErrBadRecord, err)
	}
	lon, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return trace.Point{}, fmt.Errorf("%w: longitude: %v", ErrBadRecord, err)
	}
	pos := geo.LatLon{Lat: lat, Lon: lon}
	if !pos.Valid() {
		// Even a rejected coordinate is location data: report it at
		// scrubbed precision only.
		return trace.Point{}, fmt.Errorf("%w: coordinate %s out of range", ErrBadRecord, privlog.ScrubLatLon(pos))
	}
	ts, err := time.Parse("2006-01-02 15:04:05", fields[5]+" "+fields[6])
	if err != nil {
		return trace.Point{}, fmt.Errorf("%w: timestamp: %v", ErrBadRecord, err)
	}
	return trace.Point{Pos: pos, T: ts.UTC()}, nil
}

// Write serializes the points to w in PLT format, including the
// standard header. Altitude is written as 0 feet (the synthetic data
// has no altitude channel).
func Write(w io.Writer, pts []trace.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(header); err != nil {
		return fmt.Errorf("plt: write header: %w", err)
	}
	for _, p := range pts {
		t := p.T.UTC()
		serial := float64(t.Sub(excelEpoch)) / float64(24*time.Hour)
		if _, err := fmt.Fprintf(bw, "%.6f,%.6f,0,0,%.10f,%s,%s\n",
			p.Pos.Lat, p.Pos.Lon, serial,
			t.Format("2006-01-02"), t.Format("15:04:05")); err != nil {
			return fmt.Errorf("plt: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("plt: flush: %w", err)
	}
	return nil
}

// ReadFile reads a single .plt file.
func ReadFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("plt: %w", err)
	}
	// The file is only read; a Close error cannot lose data.
	defer func() { _ = f.Close() }()
	tr, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("plt: %s: %w", path, err)
	}
	return tr, nil
}

// WriteFile writes a single .plt file, creating parent directories.
func WriteFile(path string, pts []trace.Point) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("plt: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("plt: %w", err)
	}
	if err := Write(f, pts); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("plt: close %s: %w", path, err)
	}
	return nil
}

// User is one user directory of a GeoLife-layout dataset.
type User struct {
	ID    string   // directory name, e.g. "000"
	Files []string // trajectory files, sorted
}

// ScanDataset walks a GeoLife-layout root (root/<user>/Trajectory/*.plt)
// and returns the users found, sorted by ID. Users without any .plt
// files are skipped.
func ScanDataset(root string) ([]User, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("plt: scan %s: %w", root, err)
	}
	var users []User
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name(), "Trajectory")
		var files []string
		walkErr := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.EqualFold(filepath.Ext(path), ".plt") {
				files = append(files, path)
			}
			return nil
		})
		if walkErr != nil {
			if errors.Is(walkErr, fs.ErrNotExist) {
				continue
			}
			return nil, fmt.Errorf("plt: scan %s: %w", dir, walkErr)
		}
		if len(files) == 0 {
			continue
		}
		sort.Strings(files)
		users = append(users, User{ID: e.Name(), Files: files})
	}
	sort.Slice(users, func(i, j int) bool { return users[i].ID < users[j].ID })
	return users, nil
}

// UserSource streams all trajectory files of a user in order as one
// time-ordered stream. Files are opened lazily one at a time.
type UserSource struct {
	files []string
	cur   *trace.SliceSource
}

// NewUserSource returns a Source over the user's trajectories.
func NewUserSource(u User) *UserSource {
	files := make([]string, len(u.Files))
	copy(files, u.Files)
	return &UserSource{files: files}
}

var _ trace.Source = (*UserSource)(nil)

// Next implements trace.Source.
func (s *UserSource) Next() (trace.Point, error) {
	for {
		if s.cur != nil {
			p, err := s.cur.Next()
			if err == nil {
				return p, nil
			}
			if !errors.Is(err, io.EOF) {
				return trace.Point{}, err
			}
			s.cur = nil
		}
		if len(s.files) == 0 {
			return trace.Point{}, io.EOF
		}
		tr, err := ReadFile(s.files[0])
		s.files = s.files[1:]
		if err != nil {
			return trace.Point{}, err
		}
		s.cur = trace.NewSliceSource(tr.Points)
	}
}
