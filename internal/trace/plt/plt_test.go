package plt

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"locwatch/internal/geo"
	"locwatch/internal/trace"
)

const sampleFile = `Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
39.906631,116.385564,0,492,40097.5864583333,2009-10-11,14:04:30
39.906554,116.385625,0,492,40097.5864699074,2009-10-11,14:04:31
39.906558,116.385483,0,492,40097.5864930556,2009-10-11,14:04:33
`

func TestReadSample(t *testing.T) {
	tr, err := Read(strings.NewReader(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("parsed %d points", tr.Len())
	}
	p := tr.Points[0]
	if p.Pos.Lat != 39.906631 || p.Pos.Lon != 116.385564 {
		t.Fatalf("first point = %v", p.Pos)
	}
	want := time.Date(2009, 10, 11, 14, 4, 30, 0, time.UTC)
	if !p.T.Equal(want) {
		t.Fatalf("timestamp = %v, want %v", p.T, want)
	}
	if tr.Points[2].T.Sub(tr.Points[0].T) != 3*time.Second {
		t.Fatal("timestamps not parsed correctly")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := sampleFile + "\n\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("parsed %d points", tr.Len())
	}
}

func TestReadMalformed(t *testing.T) {
	tests := []struct {
		name string
		line string
	}{
		{"too few fields", "39.9,116.4,0,492"},
		{"bad lat", "abc,116.4,0,492,40097.58,2009-10-11,14:04:30"},
		{"bad lon", "39.9,xyz,0,492,40097.58,2009-10-11,14:04:30"},
		{"bad date", "39.9,116.4,0,492,40097.58,2009-13-45,14:04:30"},
		{"bad time", "39.9,116.4,0,492,40097.58,2009-10-11,25:99:99"},
		{"out of range", "99.9,216.4,0,492,40097.58,2009-10-11,14:04:30"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := sampleFile + tt.line + "\n"
			if _, err := Read(strings.NewReader(in)); !errors.Is(err, ErrBadRecord) {
				t.Fatalf("want ErrBadRecord, got %v", err)
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	base := time.Date(2026, 7, 1, 9, 30, 0, 0, time.UTC)
	pts := make([]trace.Point, 100)
	for i := range pts {
		pts[i] = trace.Point{
			Pos: geo.Destination(geo.LatLon{Lat: 39.9, Lon: 116.4}, 45, float64(i)*3),
			T:   base.Add(time.Duration(i) * time.Second),
		}
	}
	var sb strings.Builder
	if err := Write(&sb, pts); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("round trip lost points: %d vs %d", tr.Len(), len(pts))
	}
	for i, p := range tr.Points {
		if !p.T.Equal(pts[i].T) {
			t.Fatalf("point %d time %v != %v", i, p.T, pts[i].T)
		}
		if geo.Distance(p.Pos, pts[i].Pos) > 0.2 { // 1e-6 deg quantization
			t.Fatalf("point %d moved %v m", i, geo.Distance(p.Pos, pts[i].Pos))
		}
	}
}

func TestFileAndDatasetRoundTrip(t *testing.T) {
	root := t.TempDir()
	base := time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)
	mkpts := func(offset time.Duration, n int) []trace.Point {
		pts := make([]trace.Point, n)
		for i := range pts {
			pts[i] = trace.Point{
				Pos: geo.LatLon{Lat: 39.9, Lon: 116.4},
				T:   base.Add(offset + time.Duration(i)*time.Second),
			}
		}
		return pts
	}
	// Two users, user 000 with two trajectories.
	if err := WriteFile(filepath.Join(root, "000", "Trajectory", "a.plt"), mkpts(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(root, "000", "Trajectory", "b.plt"), mkpts(time.Hour, 5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(root, "001", "Trajectory", "a.plt"), mkpts(0, 7)); err != nil {
		t.Fatal(err)
	}
	// A user directory without trajectories is skipped.
	if err := os.MkdirAll(filepath.Join(root, "002"), 0o755); err != nil {
		t.Fatal(err)
	}

	users, err := ScanDataset(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 {
		t.Fatalf("found %d users, want 2", len(users))
	}
	if users[0].ID != "000" || len(users[0].Files) != 2 {
		t.Fatalf("user[0] = %+v", users[0])
	}

	n, err := trace.Count(NewUserSource(users[0]))
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("user 000 streamed %d points, want 15", n)
	}

	// Streamed points are time ordered across file boundaries.
	src := NewUserSource(users[0])
	var prev time.Time
	for {
		p, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.T.Before(prev) {
			t.Fatal("UserSource emitted out-of-order points")
		}
		prev = p.T
	}
}

func TestScanDatasetMissingRoot(t *testing.T) {
	if _, err := ScanDataset(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing root should error")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.plt")); err == nil {
		t.Fatal("missing file should error")
	}
}
