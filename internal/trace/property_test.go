package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"locwatch/internal/geo"
)

// randomTrace builds a random time-ordered trace from a quick seed.
func randomTrace(seed int64, n int) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, 0, n)
	now := t0
	pos := geo.LatLon{Lat: 39.9, Lon: 116.4}
	for i := 0; i < n; i++ {
		now = now.Add(time.Duration(1+rng.Intn(10)) * time.Second)
		pos = geo.Destination(pos, rng.Float64()*360, rng.Float64()*30)
		pts = append(pts, Point{Pos: pos, T: now})
	}
	return pts
}

func TestPropertySamplerSpacing(t *testing.T) {
	// For any trace and interval, consecutive released points are at
	// least the interval apart.
	f := func(seed int64, nRaw uint8, ivRaw uint8) bool {
		n := int(nRaw)%200 + 2
		interval := time.Duration(int(ivRaw)%120+1) * time.Second
		pts := randomTrace(seed, n)
		s := NewSampler(NewSliceSource(pts), interval, 0)
		var prev time.Time
		first := true
		for {
			p, err := s.Next()
			if err != nil {
				return true
			}
			if !first && p.T.Sub(prev) < interval {
				return false
			}
			prev = p.T
			first = false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySamplerSubset(t *testing.T) {
	// Every released point is a point of the input, and the release
	// count never exceeds the input size.
	f := func(seed int64, nRaw uint8, ivRaw uint8) bool {
		n := int(nRaw)%200 + 1
		interval := time.Duration(int(ivRaw)%60) * time.Second
		pts := randomTrace(seed, n)
		index := map[Point]bool{}
		for _, p := range pts {
			index[p] = true
		}
		s := NewSampler(NewSliceSource(pts), interval, 0)
		count := 0
		for {
			p, err := s.Next()
			if err != nil {
				break
			}
			if !index[p] {
				return false
			}
			count++
		}
		return count <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySamplerMonotoneInInterval(t *testing.T) {
	// A larger interval never yields more points.
	f := func(seed int64, nRaw uint8, aRaw, bRaw uint8) bool {
		n := int(nRaw)%300 + 2
		a := time.Duration(int(aRaw)%300+1) * time.Second
		b := a + time.Duration(int(bRaw)%300)*time.Second
		pts := randomTrace(seed, n)
		na, err := Count(NewSampler(NewSliceSource(pts), a, 0))
		if err != nil {
			return false
		}
		nb, err := Count(NewSampler(NewSliceSource(pts), b, 0))
		if err != nil {
			return false
		}
		return nb <= na
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySplitPreservesPoints(t *testing.T) {
	// Splitting into trajectories neither loses nor duplicates points.
	f := func(seed int64, nRaw uint8, gapRaw uint8) bool {
		n := int(nRaw)%300 + 1
		gap := time.Duration(int(gapRaw)%20+1) * time.Second
		pts := randomTrace(seed, n)
		total := 0
		err := Split(NewSliceSource(pts), gap, func(tr *Trace) error {
			total += tr.Len()
			return nil
		})
		return err == nil && total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHeadNeverExceeds(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw) % 100
		k := int(kRaw) % 150
		pts := randomTrace(seed, n)
		got, err := Count(NewHead(NewSliceSource(pts), k))
		if err != nil {
			return false
		}
		want := k
		if n < k {
			want = n
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
