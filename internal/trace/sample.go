package trace

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Sampler transforms a full-rate Source into the subsequence an app
// observing the trace at a given background-access interval would
// collect: the first point at or after each access instant is released.
// This models Android's minTime listener contract — the app receives at
// most one update per interval, and receives it as soon as a fix is
// available after the interval elapses.
type Sampler struct {
	src      Source
	interval time.Duration
	phase    time.Duration
	next     time.Time // zero until the first point is seen
	started  bool
}

// NewSampler returns a Sampler releasing at most one point per
// interval. A non-positive interval passes every point through
// (continuous access). phase delays the first access after the start of
// the stream, modeling an app that begins observing mid-trace (used by
// the Figure 4(b) random-start experiment).
func NewSampler(src Source, interval, phase time.Duration) *Sampler {
	if phase < 0 {
		phase = 0
	}
	return &Sampler{src: src, interval: interval, phase: phase}
}

var _ Source = (*Sampler)(nil)

// Next implements Source.
func (s *Sampler) Next() (Point, error) {
	for {
		p, err := s.src.Next()
		if err != nil {
			return Point{}, err
		}
		if s.interval <= 0 && s.phase == 0 {
			return p, nil
		}
		if !s.started {
			s.next = p.T.Add(s.phase)
			s.started = true
		}
		if p.T.Before(s.next) {
			continue
		}
		if s.interval <= 0 {
			return p, nil
		}
		// Release this point and schedule the next access. Scheduling
		// from the released fix (not from the nominal instant) matches
		// a periodic listener re-armed on each callback.
		s.next = p.T.Add(s.interval)
		return p, nil
	}
}

// Dropout models lossy collection (e.g. GPS outages or the app being
// killed): each point is independently dropped with probability p.
type Dropout struct {
	src Source
	p   float64
	rng *rand.Rand
}

// NewDropout returns a Source dropping each point with probability p
// (clamped to [0, 1)) using the given deterministic RNG.
func NewDropout(src Source, p float64, rng *rand.Rand) *Dropout {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.999999
	}
	return &Dropout{src: src, p: p, rng: rng}
}

var _ Source = (*Dropout)(nil)

// Next implements Source.
func (d *Dropout) Next() (Point, error) {
	for {
		p, err := d.src.Next()
		if err != nil {
			return Point{}, err
		}
		if d.rng.Float64() >= d.p {
			return p, nil
		}
	}
}

// Head limits a source to its first n points.
type Head struct {
	src  Source
	left int
}

// NewHead returns a Source yielding at most n points of src.
func NewHead(src Source, n int) *Head {
	return &Head{src: src, left: n}
}

var _ Source = (*Head)(nil)

// Next implements Source.
func (h *Head) Next() (Point, error) {
	if h.left <= 0 {
		return Point{}, io.EOF
	}
	p, err := h.src.Next()
	if err != nil {
		return Point{}, err
	}
	h.left--
	return p, nil
}

// TimeWindow restricts a source to points with T in [from, to). A zero
// from or to leaves that side unbounded.
type TimeWindow struct {
	src      Source
	from, to time.Time
}

// NewTimeWindow returns a Source yielding only points within the window.
func NewTimeWindow(src Source, from, to time.Time) *TimeWindow {
	return &TimeWindow{src: src, from: from, to: to}
}

var _ Source = (*TimeWindow)(nil)

// Next implements Source.
func (w *TimeWindow) Next() (Point, error) {
	for {
		p, err := w.src.Next()
		if err != nil {
			return Point{}, err
		}
		if !w.from.IsZero() && p.T.Before(w.from) {
			continue
		}
		if !w.to.IsZero() && !p.T.Before(w.to) {
			// Points are time-ordered, so nothing further can qualify.
			return Point{}, io.EOF
		}
		return p, nil
	}
}

// Concat chains sources one after another. It does not verify time
// ordering across the boundary; callers compose ordered segments.
type Concat struct {
	srcs []Source
}

// NewConcat returns a Source streaming each src in turn.
func NewConcat(srcs ...Source) *Concat {
	return &Concat{srcs: srcs}
}

var _ Source = (*Concat)(nil)

// Next implements Source.
func (c *Concat) Next() (Point, error) {
	for len(c.srcs) > 0 {
		p, err := c.srcs[0].Next()
		if errors.Is(err, io.EOF) {
			c.srcs = c.srcs[1:]
			continue
		}
		return p, err
	}
	return Point{}, io.EOF
}

// Split partitions a source into trajectories: maximal runs of points
// whose inter-point gap stays below maxGap. This mirrors how the
// GeoLife dataset is organized into 17,621 trajectory files. The
// callback receives each completed trajectory; the Trace passed in is
// reused only after the callback returns, so callbacks that retain it
// must copy.
func Split(src Source, maxGap time.Duration, fn func(*Trace) error) error {
	if maxGap <= 0 {
		return fmt.Errorf("trace: Split needs a positive maxGap, got %v", maxGap)
	}
	cur := &Trace{}
	flush := func() error {
		if cur.Len() == 0 {
			return nil
		}
		if err := fn(cur); err != nil {
			return err
		}
		cur.Points = cur.Points[:0]
		return nil
	}
	err := ForEach(src, func(p Point) error {
		if n := cur.Len(); n > 0 && p.T.Sub(cur.Points[n-1].T) > maxGap {
			if err := flush(); err != nil {
				return err
			}
		}
		return cur.Append(p)
	})
	if err != nil {
		return err
	}
	return flush()
}
