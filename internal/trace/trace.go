// Package trace defines the location-trace model shared by the whole
// library: timestamped GPS points, in-memory traces, streaming sources,
// and the sampling transforms that model an app observing a trace at a
// given background-access frequency.
//
// Experiments in this repository run over weeks of 1 Hz data for up to
// 182 simulated users, so the package is built around the streaming
// Source interface rather than materialized slices: a full-rate trace
// never needs to exist in memory at once.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"locwatch/internal/geo"
)

// Point is a single GPS fix.
type Point struct {
	Pos geo.LatLon
	T   time.Time
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("%s@%s", p.Pos, p.T.Format(time.RFC3339))
}

// Trace is an in-memory sequence of points ordered by time.
type Trace struct {
	Points []Point
}

// Len returns the number of points.
func (tr *Trace) Len() int { return len(tr.Points) }

// Append adds a point to the end of the trace. It returns an error if
// the point is older than the current tail, keeping the ordering
// invariant intact.
func (tr *Trace) Append(p Point) error {
	if n := len(tr.Points); n > 0 && p.T.Before(tr.Points[n-1].T) {
		return fmt.Errorf("trace: out-of-order point %v before tail %v", p.T, tr.Points[n-1].T)
	}
	tr.Points = append(tr.Points, p)
	return nil
}

// Sort orders the points by timestamp (stable), for traces assembled
// from unordered input such as files.
func (tr *Trace) Sort() {
	sort.SliceStable(tr.Points, func(i, j int) bool {
		return tr.Points[i].T.Before(tr.Points[j].T)
	})
}

// Duration returns the time span covered by the trace.
func (tr *Trace) Duration() time.Duration {
	if len(tr.Points) < 2 {
		return 0
	}
	return tr.Points[len(tr.Points)-1].T.Sub(tr.Points[0].T)
}

// PathLength returns the summed great-circle length of the trace in
// meters.
func (tr *Trace) PathLength() float64 {
	var total float64
	for i := 1; i < len(tr.Points); i++ {
		total += geo.Distance(tr.Points[i-1].Pos, tr.Points[i].Pos)
	}
	return total
}

// BoundingBox returns the tight bounding box of the trace. The fold
// runs over the points in place — no intermediate coordinate slice is
// allocated, so it is safe to call on week-long full-rate traces.
func (tr *Trace) BoundingBox() geo.BoundingBox {
	if len(tr.Points) == 0 {
		return geo.BoundingBox{}
	}
	first := tr.Points[0].Pos
	b := geo.BoundingBox{
		MinLat: first.Lat, MaxLat: first.Lat,
		MinLon: first.Lon, MaxLon: first.Lon,
	}
	for _, p := range tr.Points[1:] {
		b.MinLat = math.Min(b.MinLat, p.Pos.Lat)
		b.MaxLat = math.Max(b.MaxLat, p.Pos.Lat)
		b.MinLon = math.Min(b.MinLon, p.Pos.Lon)
		b.MaxLon = math.Max(b.MaxLon, p.Pos.Lon)
	}
	return b
}

// Source is a pull-based stream of points in non-decreasing time order.
// Next returns io.EOF after the last point. Implementations need not be
// safe for concurrent use; each consumer owns its Source.
type Source interface {
	Next() (Point, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (Point, error)

// Next implements Source.
func (f SourceFunc) Next() (Point, error) { return f() }

var _ Source = SourceFunc(nil)

// SliceSource streams an in-memory point slice.
type SliceSource struct {
	pts []Point
	i   int
}

// NewSliceSource returns a Source over pts. The slice is not copied;
// the caller must not mutate it while streaming.
func NewSliceSource(pts []Point) *SliceSource {
	return &SliceSource{pts: pts}
}

var _ Source = (*SliceSource)(nil)

// Next implements Source.
func (s *SliceSource) Next() (Point, error) {
	if s.i >= len(s.pts) {
		return Point{}, io.EOF
	}
	p := s.pts[s.i]
	s.i++
	return p, nil
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.i = 0 }

// Collect drains a source into a Trace. Use only for small streams
// (tests, examples); experiments consume sources directly. The limit
// guards against accidentally materializing an unbounded stream; pass
// limit <= 0 for no bound.
func Collect(src Source, limit int) (*Trace, error) {
	tr := &Trace{}
	for {
		p, err := src.Next()
		if errors.Is(err, io.EOF) {
			return tr, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: collect: %w", err)
		}
		if err := tr.Append(p); err != nil {
			return nil, err
		}
		if limit > 0 && tr.Len() > limit {
			return nil, fmt.Errorf("trace: collect exceeded limit of %d points", limit)
		}
	}
}

// ForEach applies fn to every point of src, stopping at io.EOF or the
// first error from src or fn.
func ForEach(src Source, fn func(Point) error) error {
	for {
		p, err := src.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(p); err != nil {
			return err
		}
	}
}

// Count drains src and returns the number of points.
func Count(src Source) (int, error) {
	n := 0
	err := ForEach(src, func(Point) error { n++; return nil })
	return n, err
}
