package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"locwatch/internal/geo"
)

var t0 = time.Date(2009, 10, 11, 8, 0, 0, 0, time.UTC)

// linearPoints returns n points one second apart walking east at ~10 m/s.
func linearPoints(n int) []Point {
	origin := geo.LatLon{Lat: 39.9, Lon: 116.4}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			Pos: geo.Destination(origin, 90, float64(i)*10),
			T:   t0.Add(time.Duration(i) * time.Second),
		}
	}
	return pts
}

func TestTraceAppendOrdering(t *testing.T) {
	tr := &Trace{}
	if err := tr.Append(Point{T: t0}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(Point{T: t0.Add(time.Second)}); err != nil {
		t.Fatal(err)
	}
	// Equal timestamps are allowed (multiple providers can fix at once).
	if err := tr.Append(Point{T: t0.Add(time.Second)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(Point{T: t0.Add(-time.Second)}); err == nil {
		t.Fatal("out-of-order append should fail")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTraceSort(t *testing.T) {
	tr := &Trace{Points: []Point{
		{T: t0.Add(2 * time.Second)},
		{T: t0},
		{T: t0.Add(time.Second)},
	}}
	tr.Sort()
	for i := 1; i < tr.Len(); i++ {
		if tr.Points[i].T.Before(tr.Points[i-1].T) {
			t.Fatal("Sort did not order points")
		}
	}
}

func TestTraceDurationAndLength(t *testing.T) {
	tr := &Trace{Points: linearPoints(11)}
	if got := tr.Duration(); got != 10*time.Second {
		t.Errorf("Duration = %v", got)
	}
	if got := tr.PathLength(); math.Abs(got-100) > 0.1 {
		t.Errorf("PathLength = %v, want ~100", got)
	}
	empty := &Trace{}
	if empty.Duration() != 0 || empty.PathLength() != 0 {
		t.Error("empty trace should have zero duration and length")
	}
}

func TestTraceBoundingBox(t *testing.T) {
	tr := &Trace{Points: linearPoints(5)}
	b := tr.BoundingBox()
	for _, p := range tr.Points {
		if !b.Contains(p.Pos) {
			t.Fatalf("box misses %v", p.Pos)
		}
	}
}

func TestSliceSource(t *testing.T) {
	pts := linearPoints(3)
	src := NewSliceSource(pts)
	for i := 0; i < 3; i++ {
		p, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if p != pts[i] {
			t.Fatalf("point %d mismatch", i)
		}
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
	src.Reset()
	if p, err := src.Next(); err != nil || p != pts[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestCollect(t *testing.T) {
	pts := linearPoints(50)
	tr, err := Collect(NewSliceSource(pts), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Fatalf("collected %d points", tr.Len())
	}
	if _, err := Collect(NewSliceSource(pts), 10); err == nil {
		t.Fatal("limit exceeded should error")
	}
}

func TestCollectPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	src := SourceFunc(func() (Point, error) { return Point{}, boom })
	if _, err := Collect(src, 0); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestForEachAndCount(t *testing.T) {
	pts := linearPoints(7)
	n, err := Count(NewSliceSource(pts))
	if err != nil || n != 7 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	stop := errors.New("stop")
	calls := 0
	err = ForEach(NewSliceSource(pts), func(Point) error {
		calls++
		if calls == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || calls != 3 {
		t.Fatalf("ForEach stopped at %d with %v", calls, err)
	}
}

func TestSamplerInterval(t *testing.T) {
	pts := linearPoints(100) // 1 Hz for 100 s
	tests := []struct {
		interval time.Duration
		want     int
	}{
		{0, 100},               // pass-through
		{time.Second, 100},     // native rate
		{10 * time.Second, 10}, // one per 10 s: t=0,10,...,90
		{30 * time.Second, 4},  // t=0,30,60,90
		{2 * time.Minute, 1},   // only the first fix
	}
	for _, tt := range tests {
		s := NewSampler(NewSliceSource(pts), tt.interval, 0)
		n, err := Count(s)
		if err != nil {
			t.Fatal(err)
		}
		if n != tt.want {
			t.Errorf("interval %v: got %d points, want %d", tt.interval, n, tt.want)
		}
	}
}

func TestSamplerReleasesFirstFixAfterInstant(t *testing.T) {
	// Points every 5 s, sampling every 7 s: releases t=0, then the
	// first fix at or after t=7 (t=10), then at or after t=17 (t=20)...
	pts := make([]Point, 10)
	for i := range pts {
		pts[i] = Point{T: t0.Add(time.Duration(i*5) * time.Second)}
	}
	s := NewSampler(NewSliceSource(pts), 7*time.Second, 0)
	var got []int
	err := ForEach(s, func(p Point) error {
		got = append(got, int(p.T.Sub(t0)/time.Second))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("released at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("released at %v, want %v", got, want)
		}
	}
}

func TestSamplerPhase(t *testing.T) {
	pts := linearPoints(100)
	s := NewSampler(NewSliceSource(pts), 10*time.Second, 45*time.Second)
	first, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if off := first.T.Sub(t0); off != 45*time.Second {
		t.Fatalf("first released point at +%v, want +45s", off)
	}
	n, err := Count(s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 { // 55, 65, 75, 85, 95
		t.Fatalf("remaining count = %d, want 5", n)
	}
}

func TestSamplerNegativePhaseClamped(t *testing.T) {
	pts := linearPoints(10)
	s := NewSampler(NewSliceSource(pts), 0, -time.Hour)
	n, err := Count(s)
	if err != nil || n != 10 {
		t.Fatalf("negative phase: n=%d err=%v", n, err)
	}
}

func TestDropout(t *testing.T) {
	pts := linearPoints(2000)
	rng := newTestRand(99)
	d := NewDropout(NewSliceSource(pts), 0.3, rng)
	n, err := Count(d)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1250 || n > 1550 {
		t.Fatalf("dropout 0.3 kept %d/2000 points", n)
	}
	// p=0 keeps everything; p>=1 is clamped so the stream still ends.
	if n, _ := Count(NewDropout(NewSliceSource(pts), 0, rng)); n != 2000 {
		t.Fatalf("p=0 kept %d", n)
	}
	if n, _ := Count(NewDropout(NewSliceSource(pts), 1.5, rng)); n == 2000 {
		t.Fatal("p=1.5 should drop nearly everything")
	}
}

func TestHead(t *testing.T) {
	pts := linearPoints(10)
	n, err := Count(NewHead(NewSliceSource(pts), 4))
	if err != nil || n != 4 {
		t.Fatalf("Head(4) = %d, %v", n, err)
	}
	n, err = Count(NewHead(NewSliceSource(pts), 0))
	if err != nil || n != 0 {
		t.Fatalf("Head(0) = %d, %v", n, err)
	}
	n, err = Count(NewHead(NewSliceSource(pts), 100))
	if err != nil || n != 10 {
		t.Fatalf("Head(100) = %d, %v", n, err)
	}
}

func TestTimeWindow(t *testing.T) {
	pts := linearPoints(100)
	w := NewTimeWindow(NewSliceSource(pts), t0.Add(10*time.Second), t0.Add(20*time.Second))
	tr, err := Collect(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10 {
		t.Fatalf("window kept %d points, want 10", tr.Len())
	}
	if tr.Points[0].T != t0.Add(10*time.Second) {
		t.Fatal("window start wrong")
	}
	// Unbounded sides.
	n, _ := Count(NewTimeWindow(NewSliceSource(pts), time.Time{}, t0.Add(5*time.Second)))
	if n != 5 {
		t.Fatalf("right-bounded window = %d", n)
	}
	n, _ = Count(NewTimeWindow(NewSliceSource(pts), t0.Add(95*time.Second), time.Time{}))
	if n != 5 {
		t.Fatalf("left-bounded window = %d", n)
	}
}

func TestConcat(t *testing.T) {
	a := linearPoints(3)
	b := make([]Point, 2)
	for i := range b {
		b[i] = Point{T: t0.Add(time.Duration(100+i) * time.Second)}
	}
	c := NewConcat(NewSliceSource(a), NewSliceSource(b))
	n, err := Count(c)
	if err != nil || n != 5 {
		t.Fatalf("Concat = %d, %v", n, err)
	}
	if n, _ := Count(NewConcat()); n != 0 {
		t.Fatal("empty Concat should be empty")
	}
}

func TestSplit(t *testing.T) {
	// Three segments separated by >5 min gaps.
	var pts []Point
	base := t0
	for seg := 0; seg < 3; seg++ {
		for i := 0; i < 10; i++ {
			pts = append(pts, Point{T: base.Add(time.Duration(i) * time.Second)})
		}
		base = base.Add(time.Hour)
	}
	var sizes []int
	err := Split(NewSliceSource(pts), 5*time.Minute, func(tr *Trace) error {
		sizes = append(sizes, tr.Len())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 10 || sizes[1] != 10 || sizes[2] != 10 {
		t.Fatalf("Split sizes = %v", sizes)
	}
}

func TestSplitErrors(t *testing.T) {
	if err := Split(NewSliceSource(nil), 0, func(*Trace) error { return nil }); err == nil {
		t.Fatal("non-positive maxGap should error")
	}
	boom := errors.New("boom")
	err := Split(NewSliceSource(linearPoints(5)), time.Minute, func(*Trace) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

func TestPointString(t *testing.T) {
	p := Point{Pos: geo.LatLon{Lat: 1, Lon: 2}, T: t0}
	s := p.String()
	if s == "" || s == "@" {
		t.Fatalf("String = %q", s)
	}
}

func BenchmarkSampler(b *testing.B) {
	pts := linearPoints(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSampler(NewSliceSource(pts), 10*time.Second, 0)
		if _, err := Count(s); err != nil {
			b.Fatal(err)
		}
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func ExampleSampler() {
	pts := linearPoints(30)
	s := NewSampler(NewSliceSource(pts), 10*time.Second, 0)
	n, _ := Count(s)
	fmt.Println(n)
	// Output: 3
}
