// Package locwatch is a Go reproduction of "Location Privacy Breach:
// Apps Are Watching You in Background" (Liu, Gao, Wang — ICDCS 2017).
//
// It bundles:
//
//   - a geodesy and location-trace toolkit (streaming sources, GeoLife
//     PLT codec, samplers modelling background-access intervals);
//   - the Spatio-Temporal PoI extractor the paper adopts, plus the
//     classic stay-point baseline and place canonicalization;
//   - the paper's privacy model: user profiles under pattern 1
//     ⟨region, visited times⟩ and pattern 2 ⟨movement PoI_i→PoI_j,
//     happen times⟩, the His_bin chi-square breach detector, the
//     PoI_total / PoI_sensitive exposure metrics, and the entropy-based
//     degree-of-anonymity adversary (Formulas 2–5);
//   - simulated substrates standing in for what the paper measured on
//     hardware: an Android location stack (providers, permissions,
//     lifecycle, dumpsys) and a synthetic Google Play market calibrated
//     to the paper's §III statistics;
//   - a GeoLife-scale mobility simulator (182 users, habitual
//     routines, a shared campus) substituting for the GeoLife dataset;
//   - location-privacy defenses (truncation, coarsening, suppression,
//     decoys, rate limiting) as composable stream transforms; and
//   - one experiment driver per table and figure of the paper.
//
// This package is the stable facade: it re-exports the types and
// constructors a downstream user needs. The implementation lives under
// internal/; see DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-vs-measured results.
package locwatch

import (
	"io"
	"time"

	"locwatch/internal/android"
	"locwatch/internal/anonymize"
	"locwatch/internal/confusion"
	"locwatch/internal/core"
	"locwatch/internal/experiments"
	"locwatch/internal/geo"
	"locwatch/internal/market"
	"locwatch/internal/mitigation"
	"locwatch/internal/mobility"
	"locwatch/internal/poi"
	"locwatch/internal/privlog"
	"locwatch/internal/stats"
	"locwatch/internal/trace"
	"locwatch/internal/trace/plt"
)

// Geodesy.
type (
	// LatLon is a geographic coordinate in decimal degrees.
	LatLon = geo.LatLon
	// Projection is a local tangent-plane projection.
	Projection = geo.Projection
)

// Distance returns the great-circle distance in meters.
func Distance(p, q LatLon) float64 { return geo.Distance(p, q) }

// Destination travels dist meters from p along a bearing.
func Destination(p LatLon, bearingDeg, dist float64) LatLon {
	return geo.Destination(p, bearingDeg, dist)
}

// NewProjection anchors a local projection at origin.
func NewProjection(origin LatLon) *Projection { return geo.NewProjection(origin) }

// ScrubLatLon renders p at privacy-safe precision (~1.1 km
// quantization, marked with ≈) for logs and error messages. The
// privtaint analyzer treats values formatted this way as scrubbed;
// printing a raw LatLon instead is a lint finding.
func ScrubLatLon(p LatLon) string { return privlog.ScrubLatLon(p) }

// NewPrivacyLogger returns a categorized logger whose formatting
// arguments pass through the privlog scrubber, so coordinates,
// fixes and bounding boxes never reach the log at full precision.
func NewPrivacyLogger(component string, w io.Writer) *privlog.Logger {
	return privlog.NewLogger(component, w)
}

// Traces.
type (
	// Point is a timestamped GPS fix.
	Point = trace.Point
	// Trace is an in-memory point sequence.
	Trace = trace.Trace
	// Source is a pull-based point stream.
	Source = trace.Source
	// Sampler releases at most one point per interval — an app's
	// background-access view of a trace.
	Sampler = trace.Sampler
)

// NewSliceSource streams an in-memory point slice.
func NewSliceSource(pts []Point) Source { return trace.NewSliceSource(pts) }

// NewSampler models an app observing src at the given interval.
func NewSampler(src Source, interval, phase time.Duration) *Sampler {
	return trace.NewSampler(src, interval, phase)
}

// Collect drains a source (small streams only).
func Collect(src Source, limit int) (*Trace, error) { return trace.Collect(src, limit) }

// ReadPLT reads a GeoLife PLT file.
func ReadPLT(path string) (*Trace, error) { return plt.ReadFile(path) }

// WritePLT writes points in GeoLife PLT format.
func WritePLT(path string, pts []Point) error { return plt.WriteFile(path, pts) }

// PoI extraction.
type (
	// StayPoint is one extracted PoI visit.
	StayPoint = poi.StayPoint
	// PoIParams configures extraction (paper Table III).
	PoIParams = poi.Params
	// Place is a canonical PoI with visit counts.
	Place = poi.Place
	// Canonicalizer merges stays into places.
	Canonicalizer = poi.Canonicalizer
)

// DefaultPoIParams returns the paper's operating point (50 m, 10 min).
func DefaultPoIParams() PoIParams { return poi.DefaultParams() }

// ExtractPoIs runs the Spatio-Temporal buffer extractor over a stream.
func ExtractPoIs(src Source, params PoIParams) ([]StayPoint, error) {
	return poi.Extract(src, params)
}

// NewCanonicalizer merges stays within mergeRadius meters into places.
func NewCanonicalizer(origin LatLon, mergeRadius float64) (*Canonicalizer, error) {
	return poi.NewCanonicalizer(origin, mergeRadius)
}

// Privacy model (the paper's contribution).
type (
	// Profile is a user's location profile under both patterns.
	Profile = core.Profile
	// ProfileBuilder builds a Profile incrementally.
	ProfileBuilder = core.ProfileBuilder
	// Params configures the privacy model.
	Params = core.Params
	// Pattern selects the profile representation.
	Pattern = core.Pattern
	// Detector is the streaming His_bin breach monitor.
	Detector = core.Detector
	// CombinedDetector raises on whichever pattern fires first.
	CombinedDetector = core.CombinedDetector
	// Detection is a breach-check outcome.
	Detection = core.Detection
	// Adversary matches collected data against candidate profiles.
	Adversary = core.Adversary
	// Identification is an inference-attack outcome (Formulas 2–5).
	Identification = core.Identification
)

// The paper's two profile representations.
const (
	// PatternRegion is pattern 1: ⟨region, visited times⟩.
	PatternRegion = core.PatternRegion
	// PatternMovement is pattern 2: ⟨movement PoI_i→PoI_j, times⟩.
	PatternMovement = core.PatternMovement
)

// DefaultParams returns the paper's operating point for the privacy
// model.
func DefaultParams() Params { return core.DefaultParams() }

// BuildProfile distills a stream into a Profile.
func BuildProfile(src Source, anchor LatLon, params Params) (*Profile, error) {
	return core.BuildProfile(src, anchor, params)
}

// NewProfileBuilder returns an incremental profile builder.
func NewProfileBuilder(anchor LatLon, params Params) (*ProfileBuilder, error) {
	return core.NewProfileBuilder(anchor, params)
}

// NewDetector monitors collected data against a reference profile.
func NewDetector(reference *Profile, pattern Pattern) (*Detector, error) {
	return core.NewDetector(reference, pattern)
}

// NewCombinedDetector monitors under both patterns at once — the
// paper's concluding recommendation.
func NewCombinedDetector(reference *Profile) (*CombinedDetector, error) {
	return core.NewCombinedDetector(reference)
}

// NewAdversary holds candidate profiles for identification attacks.
func NewAdversary(profiles []*Profile) (*Adversary, error) {
	return core.NewAdversary(profiles)
}

// Entropy returns Shannon entropy in bits (Formula 3).
func Entropy(probs []float64) float64 { return stats.Entropy(probs) }

// DegreeOfAnonymity normalizes posterior entropy (Formula 5).
func DegreeOfAnonymity(probs []float64, n int) float64 {
	return stats.DegreeOfAnonymity(probs, n)
}

// Mobility simulation (the GeoLife substitute).
type (
	// MobilityConfig parameterizes the synthetic city and population.
	MobilityConfig = mobility.Config
	// World is a generated city and population.
	World = mobility.World
	// MobilityUser is one simulated user's specification.
	MobilityUser = mobility.User
)

// DefaultMobilityConfig returns the GeoLife-scale default (182 users).
func DefaultMobilityConfig() MobilityConfig { return mobility.DefaultConfig() }

// NewWorld generates a world deterministically from cfg.Seed.
func NewWorld(cfg MobilityConfig) (*World, error) { return mobility.New(cfg) }

// Android & market substrates.
type (
	// Device is a simulated handset.
	Device = android.Device
	// AppSpec is an installable app.
	AppSpec = android.AppSpec
	// AppBehavior is what an app does with location at runtime.
	AppBehavior = android.Behavior
	// Provider is an Android location provider.
	Provider = android.Provider
	// Market is the synthetic app market.
	Market = market.Market
	// MarketCampaign drives the §III measurement protocol.
	MarketCampaign = market.Campaign
	// MarketReport aggregates campaign observations.
	MarketReport = market.Report
)

// Android providers.
const (
	ProviderGPS     = android.GPS
	ProviderNetwork = android.Network
	ProviderPassive = android.Passive
	ProviderFused   = android.Fused
)

// NewDevice returns a device whose owner stands at pos.
func NewDevice(start time.Time, pos LatLon) *Device { return android.NewDevice(start, pos) }

// GenerateMarket builds the 2,800-app synthetic market.
func GenerateMarket(seed int64) (*Market, error) { return market.Generate(seed) }

// Defenses.

// TruncateStream applies coordinate truncation (Micinski et al.).
func TruncateStream(src Source, digits int) Source { return mitigation.NewTruncate(src, digits) }

// CoarsenStream snaps fixes to a grid (LP-Guardian style).
func CoarsenStream(src Source, anchor LatLon, cell float64) (Source, error) {
	return mitigation.NewCoarsen(src, anchor, cell)
}

// SuppressStream drops fixes near protected places.
func SuppressStream(src Source, centers []LatLon, radius float64) (Source, error) {
	return mitigation.NewSuppress(src, centers, radius)
}

// DecoyStream releases a fixed fake location (MockDroid/TISSA style).
func DecoyStream(src Source, pos LatLon) Source { return mitigation.NewDecoy(src, pos) }

// RateLimitStream enforces a minimum interval between released fixes.
func RateLimitStream(src Source, min time.Duration) (Source, error) {
	return mitigation.NewRateLimit(src, min)
}

// Trusted-server baselines & tracking metrics.
type (
	// Cloaker performs adaptive quadtree k-anonymity cloaking.
	Cloaker = anonymize.Cloaker
	// AlignedPositions is a population snapshot matrix.
	AlignedPositions = anonymize.AlignedPositions
	// ConfusionParams configures the tracking adversary.
	ConfusionParams = confusion.Params
	// ConfusionResult summarizes one user's trackability.
	ConfusionResult = confusion.Result
)

// NewCloaker covers ±halfSize meters around anchor with k-anonymous
// quadtree cells.
func NewCloaker(anchor LatLon, halfSize float64, k int, minCell float64) (*Cloaker, error) {
	return anonymize.NewCloaker(anchor, halfSize, k, minCell)
}

// AlignPositions samples sources on a shared time grid.
func AlignPositions(sources []Source, start, end time.Time, interval time.Duration) (*AlignedPositions, error) {
	return anonymize.Align(sources, start, end, interval)
}

// TimeToConfusion runs Hoh et al.'s tracking adversary against one
// user of an aligned population.
func TimeToConfusion(a *AlignedPositions, who int, params ConfusionParams) (ConfusionResult, error) {
	return confusion.TimeToConfusion(a, who, params)
}

// Experiments.
type (
	// ExperimentConfig parameterizes the evaluation harness.
	ExperimentConfig = experiments.Config
	// Lab owns shared experiment inputs (world, profiles).
	Lab = experiments.Lab
)

// DefaultExperimentConfig is the paper-scale evaluation configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig is a reduced configuration for smoke runs.
func QuickExperimentConfig() ExperimentConfig { return experiments.Quick() }

// NewLab builds the shared experiment inputs.
func NewLab(cfg ExperimentConfig) (*Lab, error) { return experiments.NewLab(cfg) }
