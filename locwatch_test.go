package locwatch_test

import (
	"path/filepath"
	"testing"
	"time"

	"locwatch"
)

// TestPublicAPIEndToEnd drives the whole pipeline through the facade:
// world → trace → profile → detector → adversary → defenses → PLT.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := locwatch.DefaultMobilityConfig()
	cfg.Users = 4
	cfg.Days = 5
	cfg.FracTripsOnly = 0
	cfg.FracSparse = 0
	world, err := locwatch.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Profile of user 0 from the native stream.
	src, err := world.Trace(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := locwatch.BuildProfile(src, cfg.CityCenter, locwatch.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if profile.NumPlaces() == 0 || profile.NumVisits() == 0 {
		t.Fatalf("degenerate profile: %d places, %d visits", profile.NumPlaces(), profile.NumVisits())
	}

	// PoI extraction via the standalone API agrees with the profile.
	src2, err := world.Trace(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stays, err := locwatch.ExtractPoIs(src2, locwatch.DefaultPoIParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(stays) != profile.NumVisits() {
		t.Fatalf("ExtractPoIs found %d stays, profile has %d visits", len(stays), profile.NumVisits())
	}

	// Streaming detection breaches on the user's own data.
	det, err := locwatch.NewDetector(profile, locwatch.PatternMovement)
	if err != nil {
		t.Fatal(err)
	}
	src3, err := world.Trace(0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := det.FirstBreach(src3)
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Breached {
		t.Fatal("no breach on the user's own data")
	}

	// Adversary identification across the small population.
	profiles := make([]*locwatch.Profile, world.NumUsers())
	for id := range profiles {
		s, err := world.Trace(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		profiles[id], err = locwatch.BuildProfile(s, cfg.CityCenter, locwatch.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
	}
	adv, err := locwatch.NewAdversary(profiles)
	if err != nil {
		t.Fatal(err)
	}
	ident, err := adv.Identify(profiles[0], locwatch.PatternMovement)
	if err != nil {
		t.Fatal(err)
	}
	if !ident.Candidates[0].Matched {
		t.Fatal("adversary missed the owner")
	}

	// Defenses compose on the stream and actually protect.
	src4, err := world.Trace(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defended := locwatch.TruncateStream(src4, 2)
	obs, err := locwatch.BuildProfile(defended, cfg.CityCenter, locwatch.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, discovered := profile.Coverage(obs); discovered != 0 {
		t.Fatalf("truncated stream still discovered %d places", discovered)
	}

	// PLT round trip through the facade.
	src5, err := world.Trace(0, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locwatch.Collect(src5, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "u0.plt")
	if err := locwatch.WritePLT(path, tr.Points); err != nil {
		t.Fatal(err)
	}
	back, err := locwatch.ReadPLT(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("PLT round trip lost points: %d vs %d", back.Len(), tr.Len())
	}
}

// TestPublicAPIMarket drives the market substrate through the facade.
func TestPublicAPIMarket(t *testing.T) {
	if testing.Short() {
		t.Skip("market campaign in -short mode")
	}
	m, err := locwatch.GenerateMarket(1)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := locwatch.MarketCampaign{}.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	background := 0
	for _, o := range obs {
		if o.Background {
			background++
		}
	}
	if background != 102 {
		t.Fatalf("background apps = %d, want 102", background)
	}
}

// TestPublicAPIDevice exercises the Android substrate via the facade.
func TestPublicAPIDevice(t *testing.T) {
	start := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	dev := locwatch.NewDevice(start, locwatch.LatLon{Lat: 39.9, Lon: 116.4})
	spec := locwatch.AppSpec{
		Package:     "com.api.demo",
		Permissions: nil, // no permissions: install fine, no location
		Behavior:    locwatch.AppBehavior{},
	}
	if _, err := dev.Install(spec); err != nil {
		t.Fatal(err)
	}
	if err := dev.Launch("com.api.demo"); err != nil {
		t.Fatal(err)
	}
	dev.Advance(time.Minute)
	if dev.NotificationVisible() {
		t.Fatal("permissionless app lit the location indicator")
	}
}

// TestEntropyHelpers checks the re-exported formulas.
func TestEntropyHelpers(t *testing.T) {
	if got := locwatch.Entropy([]float64{0.5, 0.5}); got < 0.999 || got > 1.001 {
		t.Fatalf("Entropy = %v", got)
	}
	if got := locwatch.DegreeOfAnonymity([]float64{1, 0}, 2); got != 0 {
		t.Fatalf("DegreeOfAnonymity = %v", got)
	}
}

// TestGeodesyHelpers checks the re-exported geo primitives.
func TestGeodesyHelpers(t *testing.T) {
	p := locwatch.LatLon{Lat: 39.9, Lon: 116.4}
	q := locwatch.Destination(p, 90, 1000)
	if d := locwatch.Distance(p, q); d < 999 || d > 1001 {
		t.Fatalf("Distance = %v", d)
	}
	proj := locwatch.NewProjection(p)
	if d := proj.PlanarDistance(p, q); d < 999 || d > 1001 {
		t.Fatalf("PlanarDistance = %v", d)
	}
}
