// Command benchjson runs the repository's benchmark suites (the root
// figure/ablation suite plus any extra packages named with -pkgs) and
// records the ns/op trajectory as a JSON artifact (BENCH_<n>.json, one
// per optimization PR). Each artifact holds a "before" and an "after"
// column so the speedup of the change that introduced it stays
// reviewable long after the baseline machine is gone.
//
// Typical uses:
//
//	go run ./scripts/benchjson -benchtime 1x -keep-before -out BENCH_3.json
//	    re-runs the suite and refreshes the "after" column, keeping the
//	    checked-in "before" baseline (what `make bench` does);
//
//	go run ./scripts/benchjson -input after.txt -before before.txt -out BENCH_3.json
//	    builds the artifact from two saved `go test -bench` outputs
//	    without running anything.
//
// Numbers from different machines are not comparable; only the
// before/after pair inside one artifact is, since both columns come
// from the same host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Artifact is the schema of a BENCH_<n>.json file.
type Artifact struct {
	Schema string `json:"schema"`
	Config struct {
		Bench     string `json:"bench"`
		Benchtime string `json:"benchtime"`
		Count     int    `json:"count"`
	} `json:"config"`
	// Before and After map benchmark name to ns/op.
	Before  map[string]float64 `json:"before"`
	After   map[string]float64 `json:"after"`
	Speedup map[string]float64 `json:"speedup,omitempty"`
	// Aggregate summarizes the shared-Lab figure and ablation
	// benchmarks, the suite the optimization PRs target.
	Aggregate *Aggregate `json:"aggregate,omitempty"`
}

// Aggregate is the summed before/after of one benchmark family.
type Aggregate struct {
	Pattern  string  `json:"pattern"`
	BeforeNs float64 `json:"before_ns"`
	AfterNs  float64 `json:"after_ns"`
	Speedup  float64 `json:"speedup"`
}

// aggregatePattern selects the benchmarks that share one Lab — the
// population whose aggregate speedup the perf PRs are judged on.
var aggregatePattern = regexp.MustCompile(`^Benchmark(Figure[2-5]|Ablation)`)

// benchLine matches one `go test -bench` result line; the trailing
// -<GOMAXPROCS> suffix is stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is main without the exit: an empty benchmark set anywhere is an
// error before anything is written, so a typoed pattern or a garbage
// input file can never produce a degenerate artifact that later reads
// as "no change".
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH_3.json", "artifact to write")
	bench := fs.String("bench", ".", "benchmark pattern passed to go test -bench")
	benchtime := fs.String("benchtime", "1x", "passed to go test -benchtime")
	count := fs.Int("count", 1, "passed to go test -count; min ns/op per benchmark is kept")
	input := fs.String("input", "", "parse this saved go-test output as the after column instead of running")
	before := fs.String("before", "", "parse this saved go-test output as the before column")
	keepBefore := fs.Bool("keep-before", false, "reuse the before column of the existing -out artifact")
	pkgs := fs.String("pkgs", ".", "comma-separated packages whose benchmarks feed the after column")
	if err := fs.Parse(args); err != nil {
		return err
	}

	after, err := afterColumn(*input, *bench, *benchtime, *count, splitPkgs(*pkgs))
	if err != nil {
		return err
	}
	if len(after) == 0 {
		if *input != "" {
			return fmt.Errorf("no benchmark result lines in %s; refusing to write a degenerate %s (expected `go test -bench` output)", *input, *out)
		}
		return fmt.Errorf("`go test -bench %s` matched no benchmarks; refusing to write a degenerate %s (check the -bench pattern)", *bench, *out)
	}

	art := &Artifact{
		Schema: "locwatch-bench/v1",
		Before: map[string]float64{},
		After:  after,
	}
	art.Config.Bench = *bench
	art.Config.Benchtime = *benchtime
	art.Config.Count = *count

	switch {
	case *before != "":
		art.Before, err = parseFile(*before)
		if err != nil {
			return err
		}
		if len(art.Before) == 0 {
			return fmt.Errorf("no benchmark result lines in baseline %s; pass a saved `go test -bench` output as -before", *before)
		}
	case *keepBefore:
		art.Before, err = beforeFromArtifact(*out)
		if err != nil {
			return err
		}
	}

	fillSpeedups(art)
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return report(stdout, art, *out)
}

// afterColumn obtains the fresh measurements: either by parsing a
// saved run, or by running the benchmark suites of pkgs in one
// `go test` invocation. Benchmark names must be unique across the
// listed packages — parse keys on the bare name, so a collision would
// silently keep only the faster of the two.
func afterColumn(input, bench, benchtime string, count int, pkgs []string) (map[string]float64, error) {
	if input != "" {
		return parseFile(input)
	}
	// Benchmarks only (-run '^$'), verbose enough to parse.
	cmd := exec.Command("go", append([]string{"test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime, "-count", strconv.Itoa(count)}, pkgs...)...)
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return parse(string(outBuf))
}

// splitPkgs parses the -pkgs value, dropping empty segments so a
// trailing comma cannot turn into `go test ""`.
func splitPkgs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []string{"."}
	}
	return out
}

// parseFile parses a saved `go test -bench` output file.
func parseFile(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(string(buf))
}

// parse extracts ns/op per benchmark; with repeated lines (-count > 1)
// the minimum is kept, the usual noise-robust reading.
func parse(out string) (map[string]float64, error) {
	results := map[string]float64{}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(out, -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		if prev, ok := results[m[1]]; !ok || ns < prev {
			results[m[1]] = ns
		}
	}
	return results, nil
}

// beforeFromArtifact reads the before column of an existing artifact;
// a missing file yields an empty baseline rather than an error so the
// first `make bench` on a fresh branch still works.
func beforeFromArtifact(path string) (map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]float64{}, nil
	}
	if err != nil {
		return nil, err
	}
	var prev Artifact
	if err := json.Unmarshal(buf, &prev); err != nil {
		return nil, fmt.Errorf("existing artifact %s: %w", path, err)
	}
	if prev.Before == nil {
		return map[string]float64{}, nil
	}
	return prev.Before, nil
}

// fillSpeedups computes per-benchmark and aggregate speedups over the
// names present in both columns.
func fillSpeedups(art *Artifact) {
	if len(art.Before) == 0 {
		return
	}
	art.Speedup = map[string]float64{}
	agg := &Aggregate{Pattern: aggregatePattern.String()}
	for name, afterNs := range art.After {
		beforeNs, ok := art.Before[name]
		if !ok || afterNs <= 0 {
			continue
		}
		art.Speedup[name] = round2(beforeNs / afterNs)
		if aggregatePattern.MatchString(name) {
			agg.BeforeNs += beforeNs
			agg.AfterNs += afterNs
		}
	}
	if agg.AfterNs > 0 {
		agg.Speedup = round2(agg.BeforeNs / agg.AfterNs)
		art.Aggregate = agg
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// report prints a short human-readable summary next to the artifact.
func report(w io.Writer, art *Artifact, out string) error {
	names := make([]string, 0, len(art.After))
	for name := range art.After {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "wrote %s (%d benchmarks)\n", out, len(names)); err != nil {
		return err
	}
	for _, name := range names {
		var err error
		if s, ok := art.Speedup[name]; ok {
			_, err = fmt.Fprintf(w, "  %-36s %14.0f ns/op  %5.2fx\n", name, art.After[name], s)
		} else {
			_, err = fmt.Fprintf(w, "  %-36s %14.0f ns/op\n", name, art.After[name])
		}
		if err != nil {
			return err
		}
	}
	if art.Aggregate != nil {
		if _, err := fmt.Fprintf(w, "shared-Lab aggregate (%s): %.2fx\n", art.Aggregate.Pattern, art.Aggregate.Speedup); err != nil {
			return err
		}
	}
	return nil
}
