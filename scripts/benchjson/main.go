// Command benchjson runs the repository's benchmark suites (the root
// figure/ablation suite plus any extra packages named with -pkgs) and
// records the ns/op and allocs/op trajectory as a JSON artifact
// (BENCH_<n>.json, one per optimization PR). Each artifact holds a
// "before" and an "after" column so the speedup of the change that
// introduced it stays reviewable long after the baseline machine is
// gone.
//
// Typical uses:
//
//	go run ./scripts/benchjson -benchtime 1x -keep-before -out BENCH_8.json
//	    re-runs the suite and refreshes the "after" column, keeping the
//	    checked-in "before" baseline (what `make bench` does);
//
//	go run ./scripts/benchjson -input after.txt -before before.txt -out BENCH_8.json
//	    builds the artifact from two saved `go test -bench` outputs
//	    without running anything;
//
//	go run ./scripts/benchjson -compare-old base.json -compare-new BENCH_8.json
//	    diffs the after columns of two artifacts and emits GitHub
//	    ::warning:: annotations for regressions past -regress-pct. The
//	    exit status is always success — the CI bench job is non-gating.
//
// Numbers from different machines are not comparable; only the
// before/after pair inside one artifact is, since both columns come
// from the same host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Artifact is the schema of a BENCH_<n>.json file. v2 adds the
// allocs/op columns; v1 artifacts (ns only) still unmarshal, their
// alloc maps just come back empty.
type Artifact struct {
	Schema string `json:"schema"`
	Config struct {
		Bench     string `json:"bench"`
		Benchtime string `json:"benchtime"`
		Count     int    `json:"count"`
	} `json:"config"`
	// Before and After map benchmark name to ns/op; the Allocs maps
	// carry allocs/op for benchmarks measured with -benchmem.
	Before       map[string]float64 `json:"before"`
	After        map[string]float64 `json:"after"`
	BeforeAllocs map[string]float64 `json:"before_allocs,omitempty"`
	AfterAllocs  map[string]float64 `json:"after_allocs,omitempty"`
	// Speedup is before/after ns; AllocRatio is before/after allocs
	// (omitted for a benchmark when after reaches zero allocations).
	Speedup    map[string]float64 `json:"speedup,omitempty"`
	AllocRatio map[string]float64 `json:"alloc_ratio,omitempty"`
	// Aggregate summarizes the shared-Lab figure and ablation
	// benchmarks, the suite the optimization PRs target.
	Aggregate *Aggregate `json:"aggregate,omitempty"`
}

// Aggregate is the summed before/after of one benchmark family.
type Aggregate struct {
	Pattern  string  `json:"pattern"`
	BeforeNs float64 `json:"before_ns"`
	AfterNs  float64 `json:"after_ns"`
	Speedup  float64 `json:"speedup"`
}

// column is one measured side of an artifact: ns/op per benchmark,
// plus allocs/op where the run carried -benchmem.
type column struct {
	ns     map[string]float64
	allocs map[string]float64
}

// aggregatePattern selects the benchmarks that share one Lab — the
// population whose aggregate speedup the perf PRs are judged on.
var aggregatePattern = regexp.MustCompile(`^Benchmark(Figure[2-5]|Ablation)`)

// benchLine matches one `go test -bench` result line; the trailing
// -<GOMAXPROCS> suffix is stripped from the name and the -benchmem
// tail is captured when present.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9]+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is main without the exit: an empty benchmark set anywhere is an
// error before anything is written, so a typoed pattern or a garbage
// input file can never produce a degenerate artifact that later reads
// as "no change".
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH_8.json", "artifact to write")
	bench := fs.String("bench", ".", "benchmark pattern passed to go test -bench")
	benchtime := fs.String("benchtime", "1x", "passed to go test -benchtime")
	count := fs.Int("count", 1, "passed to go test -count; min ns/op per benchmark is kept")
	input := fs.String("input", "", "parse this saved go-test output as the after column instead of running")
	before := fs.String("before", "", "parse this saved go-test output as the before column")
	keepBefore := fs.Bool("keep-before", false, "reuse the before column of the existing -out artifact")
	pkgs := fs.String("pkgs", ".", "comma-separated packages whose benchmarks feed the after column")
	compareOld := fs.String("compare-old", "", "baseline artifact for compare mode")
	compareNew := fs.String("compare-new", "", "fresh artifact for compare mode")
	regressPct := fs.Float64("regress-pct", 10, "compare mode: annotate after-column regressions beyond this percentage")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compareOld != "" || *compareNew != "" {
		if *compareOld == "" || *compareNew == "" {
			return fmt.Errorf("compare mode needs both -compare-old and -compare-new")
		}
		return compare(stdout, *compareOld, *compareNew, *regressPct)
	}

	after, err := afterColumn(*input, *bench, *benchtime, *count, splitPkgs(*pkgs))
	if err != nil {
		return err
	}
	if len(after.ns) == 0 {
		if *input != "" {
			return fmt.Errorf("no benchmark result lines in %s; refusing to write a degenerate %s (expected `go test -bench` output)", *input, *out)
		}
		return fmt.Errorf("`go test -bench %s` matched no benchmarks; refusing to write a degenerate %s (check the -bench pattern)", *bench, *out)
	}

	art := &Artifact{
		Schema:       "locwatch-bench/v2",
		Before:       map[string]float64{},
		After:        after.ns,
		AfterAllocs:  after.allocs,
		BeforeAllocs: map[string]float64{},
	}
	art.Config.Bench = *bench
	art.Config.Benchtime = *benchtime
	art.Config.Count = *count

	switch {
	case *before != "":
		col, err := parseFile(*before)
		if err != nil {
			return err
		}
		if len(col.ns) == 0 {
			return fmt.Errorf("no benchmark result lines in baseline %s; pass a saved `go test -bench` output as -before", *before)
		}
		art.Before, art.BeforeAllocs = col.ns, col.allocs
	case *keepBefore:
		art.Before, art.BeforeAllocs, err = beforeFromArtifact(*out)
		if err != nil {
			return err
		}
	}

	// A baseline benchmark that vanished from the fresh run means the
	// artifact would silently stop tracking it (a rename, a deleted
	// bench, or a broken -pkgs list). Refuse rather than hide it.
	if missing := missingFromAfter(art.Before, art.After); len(missing) > 0 {
		return fmt.Errorf("baseline benchmarks missing from the fresh run: %s (renamed or deleted? rebuild the before column)", strings.Join(missing, ", "))
	}

	fillSpeedups(art)
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	return report(stdout, art, *out)
}

// missingFromAfter returns the sorted baseline names absent from the
// fresh column.
func missingFromAfter(before, after map[string]float64) []string {
	var missing []string
	for name := range before {
		if _, ok := after[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// afterColumn obtains the fresh measurements: either by parsing a
// saved run, or by running the benchmark suites of pkgs in one
// `go test` invocation (always with -benchmem, so the alloc columns
// are populated). Benchmark names must be unique across the listed
// packages — parse keys on the bare name, so a collision would
// silently keep only the faster of the two.
func afterColumn(input, bench, benchtime string, count int, pkgs []string) (column, error) {
	if input != "" {
		return parseFile(input)
	}
	// Benchmarks only (-run '^$'), verbose enough to parse.
	cmd := exec.Command("go", append([]string{"test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime, "-benchmem",
		"-count", strconv.Itoa(count)}, pkgs...)...)
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		return column{}, fmt.Errorf("go test -bench: %w", err)
	}
	return parse(string(outBuf))
}

// splitPkgs parses the -pkgs value, dropping empty segments so a
// trailing comma cannot turn into `go test ""`.
func splitPkgs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []string{"."}
	}
	return out
}

// parseFile parses a saved `go test -bench` output file.
func parseFile(path string) (column, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return column{}, err
	}
	return parse(string(buf))
}

// parse extracts ns/op (and allocs/op when -benchmem ran) per
// benchmark; with repeated lines (-count > 1) the minimum of each
// metric is kept, the usual noise-robust reading.
func parse(out string) (column, error) {
	col := column{ns: map[string]float64{}, allocs: map[string]float64{}}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(out, -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return column{}, fmt.Errorf("parse %q: %w", line, err)
		}
		if prev, ok := col.ns[m[1]]; !ok || ns < prev {
			col.ns[m[1]] = ns
		}
		if m[4] == "" {
			continue
		}
		allocs, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return column{}, fmt.Errorf("parse %q: %w", line, err)
		}
		if prev, ok := col.allocs[m[1]]; !ok || allocs < prev {
			col.allocs[m[1]] = allocs
		}
	}
	return col, nil
}

// beforeFromArtifact reads the before columns of an existing artifact;
// a missing file yields an empty baseline rather than an error so the
// first `make bench` on a fresh branch still works. v1 artifacts have
// no alloc column — the ns baseline is kept and allocs start empty.
func beforeFromArtifact(path string) (map[string]float64, map[string]float64, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]float64{}, map[string]float64{}, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var prev Artifact
	if err := json.Unmarshal(buf, &prev); err != nil {
		return nil, nil, fmt.Errorf("existing artifact %s: %w", path, err)
	}
	if prev.Before == nil {
		prev.Before = map[string]float64{}
	}
	if prev.BeforeAllocs == nil {
		prev.BeforeAllocs = map[string]float64{}
	}
	return prev.Before, prev.BeforeAllocs, nil
}

// fillSpeedups computes per-benchmark and aggregate speedups over the
// names present in both columns, plus the alloc-reduction ratios.
func fillSpeedups(art *Artifact) {
	if len(art.Before) == 0 {
		return
	}
	art.Speedup = map[string]float64{}
	agg := &Aggregate{Pattern: aggregatePattern.String()}
	for name, afterNs := range art.After {
		beforeNs, ok := art.Before[name]
		if !ok || afterNs <= 0 {
			continue
		}
		art.Speedup[name] = round2(beforeNs / afterNs)
		if aggregatePattern.MatchString(name) {
			agg.BeforeNs += beforeNs
			agg.AfterNs += afterNs
		}
	}
	if agg.AfterNs > 0 {
		agg.Speedup = round2(agg.BeforeNs / agg.AfterNs)
		art.Aggregate = agg
	}
	if len(art.BeforeAllocs) == 0 {
		return
	}
	art.AllocRatio = map[string]float64{}
	for name, afterAllocs := range art.AfterAllocs {
		beforeAllocs, ok := art.BeforeAllocs[name]
		if !ok || afterAllocs <= 0 {
			// A benchmark that reached zero allocations has no finite
			// ratio; the report still shows its allocs/op column.
			continue
		}
		art.AllocRatio[name] = round2(beforeAllocs / afterAllocs)
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// report prints a short human-readable summary next to the artifact:
// after-column ns/op and allocs/op with their before/after ratios.
func report(w io.Writer, art *Artifact, out string) error {
	names := make([]string, 0, len(art.After))
	for name := range art.After {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "wrote %s (%d benchmarks)\n", out, len(names)); err != nil {
		return err
	}
	for _, name := range names {
		line := fmt.Sprintf("  %-36s %14.0f ns/op", name, art.After[name])
		if s, ok := art.Speedup[name]; ok {
			line += fmt.Sprintf("  %5.2fx", s)
		}
		if a, ok := art.AfterAllocs[name]; ok {
			line += fmt.Sprintf("  %10.0f allocs/op", a)
			if r, ok := art.AllocRatio[name]; ok {
				line += fmt.Sprintf("  %6.2fx", r)
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if art.Aggregate != nil {
		if _, err := fmt.Fprintf(w, "shared-Lab aggregate (%s): %.2fx\n", art.Aggregate.Pattern, art.Aggregate.Speedup); err != nil {
			return err
		}
	}
	return nil
}

// compare diffs the after columns of two artifacts and emits GitHub
// workflow ::warning:: annotations for every benchmark slower by more
// than pct percent in the new artifact, or missing from it entirely.
// It never returns an error for regressions — the CI bench job is
// informative, not gating — only for unreadable artifacts.
func compare(w io.Writer, oldPath, newPath string, pct float64) error {
	oldArt, err := readArtifact(oldPath)
	if err != nil {
		return err
	}
	newArt, err := readArtifact(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldArt.After))
	for name := range oldArt.After {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		oldNs := oldArt.After[name]
		newNs, ok := newArt.After[name]
		if !ok {
			regressions++
			if _, err := fmt.Fprintf(w, "::warning::benchmark %s present in %s but missing from %s\n", name, oldPath, newPath); err != nil {
				return err
			}
			continue
		}
		if oldNs <= 0 {
			continue
		}
		change := (newNs - oldNs) / oldNs * 100
		if change > pct {
			regressions++
			if _, err := fmt.Fprintf(w, "::warning::benchmark %s regressed %.1f%% (%.0f -> %.0f ns/op)\n", name, change, oldNs, newNs); err != nil {
				return err
			}
		}
	}
	if regressions == 0 {
		_, err := fmt.Fprintf(w, "bench compare: no regressions beyond %.0f%% across %d benchmarks\n", pct, len(names))
		return err
	}
	_, err = fmt.Fprintf(w, "bench compare: %d regression(s) beyond %.0f%% (non-gating)\n", regressions, pct)
	return err
}

// readArtifact loads one BENCH_<n>.json.
func readArtifact(path string) (*Artifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(buf, &art); err != nil {
		return nil, fmt.Errorf("artifact %s: %w", path, err)
	}
	if len(art.After) == 0 {
		return nil, fmt.Errorf("artifact %s has an empty after column", path)
	}
	return &art, nil
}
