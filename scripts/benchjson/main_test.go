package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleAfter = `goos: linux
BenchmarkFigure2-8                 1    120000000 ns/op
BenchmarkFigure4a-8                1     60000000 ns/op
BenchmarkTraceGen-8                2      5000000 ns/op
PASS
`

const sampleBefore = `BenchmarkFigure2-8                 1    240000000 ns/op
BenchmarkFigure4a-8                1     90000000 ns/op
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBuildsArtifact(t *testing.T) {
	dir := t.TempDir()
	after := write(t, dir, "after.txt", sampleAfter)
	before := write(t, dir, "before.txt", sampleBefore)
	out := filepath.Join(dir, "BENCH.json")

	var stdout bytes.Buffer
	err := run([]string{"-input", after, "-before", before, "-out", out}, &stdout)
	if err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(buf, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.After) != 3 || len(art.Before) != 2 {
		t.Fatalf("after %d / before %d benchmarks", len(art.After), len(art.Before))
	}
	if s := art.Speedup["BenchmarkFigure2"]; s != 2 {
		t.Fatalf("Figure2 speedup %v, want 2", s)
	}
	if art.Aggregate == nil || art.Aggregate.Speedup == 0 {
		t.Fatal("missing shared-Lab aggregate")
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Fatalf("summary missing artifact path: %q", stdout.String())
	}
}

func TestRunRefusesEmptyAfter(t *testing.T) {
	dir := t.TempDir()
	input := write(t, dir, "garbage.txt", "no benchmarks here\n")
	out := filepath.Join(dir, "BENCH.json")

	err := run([]string{"-input", input, "-out", out}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("empty benchmark set accepted")
	}
	if !strings.Contains(err.Error(), input) || !strings.Contains(err.Error(), "degenerate") {
		t.Fatalf("error does not name the input file: %v", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("degenerate artifact written anyway: %v", statErr)
	}
}

func TestRunRefusesEmptyBefore(t *testing.T) {
	dir := t.TempDir()
	after := write(t, dir, "after.txt", sampleAfter)
	before := write(t, dir, "empty.txt", "PASS\n")
	out := filepath.Join(dir, "BENCH.json")

	err := run([]string{"-input", after, "-before", before, "-out", out}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("empty baseline accepted")
	}
	if !strings.Contains(err.Error(), before) {
		t.Fatalf("error does not name the baseline file: %v", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("artifact written despite empty baseline: %v", statErr)
	}
}

func TestParseKeepsMinimum(t *testing.T) {
	got, err := parse("BenchmarkX-8 1 300 ns/op\nBenchmarkX-8 1 100 ns/op\nBenchmarkX-8 1 200 ns/op\n")
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 100 {
		t.Fatalf("min ns/op %v, want 100", got["BenchmarkX"])
	}
}

func TestKeepBeforeMissingArtifact(t *testing.T) {
	dir := t.TempDir()
	after := write(t, dir, "after.txt", sampleAfter)
	out := filepath.Join(dir, "BENCH.json")

	// First run on a fresh branch: no existing artifact, -keep-before
	// degrades to an empty baseline instead of failing.
	if err := run([]string{"-input", after, "-keep-before", "-out", out}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	var art Artifact
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Before) != 0 || len(art.Speedup) != 0 {
		t.Fatalf("fresh-branch artifact has before=%d speedup=%d entries", len(art.Before), len(art.Speedup))
	}
}

func TestSplitPkgs(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{".", "."},
		{".,./internal/lint/callgraph", ". ./internal/lint/callgraph"},
		{" . , ./pkg ,", ". ./pkg"},
		{"", "."},
		{",,", "."},
	}
	for _, c := range cases {
		if got := strings.Join(splitPkgs(c.in), " "); got != c.want {
			t.Errorf("splitPkgs(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
