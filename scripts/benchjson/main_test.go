package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleAfter = `goos: linux
BenchmarkFigure2-8                 1    120000000 ns/op    4000000 B/op     9000 allocs/op
BenchmarkFigure4a-8                1     60000000 ns/op    2000000 B/op     5000 allocs/op
BenchmarkTraceGen-8                2      5000000 ns/op
PASS
`

const sampleBefore = `BenchmarkFigure2-8                 1    240000000 ns/op 1280000000 B/op   162000 allocs/op
BenchmarkFigure4a-8                1     90000000 ns/op    9000000 B/op    20000 allocs/op
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBuildsArtifact(t *testing.T) {
	dir := t.TempDir()
	after := write(t, dir, "after.txt", sampleAfter)
	before := write(t, dir, "before.txt", sampleBefore)
	out := filepath.Join(dir, "BENCH.json")

	var stdout bytes.Buffer
	err := run([]string{"-input", after, "-before", before, "-out", out}, &stdout)
	if err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(buf, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != "locwatch-bench/v2" {
		t.Fatalf("schema %q", art.Schema)
	}
	if len(art.After) != 3 || len(art.Before) != 2 {
		t.Fatalf("after %d / before %d benchmarks", len(art.After), len(art.Before))
	}
	if s := art.Speedup["BenchmarkFigure2"]; s != 2 {
		t.Fatalf("Figure2 speedup %v, want 2", s)
	}
	if a := art.AfterAllocs["BenchmarkFigure2"]; a != 9000 {
		t.Fatalf("Figure2 after allocs %v, want 9000", a)
	}
	if r := art.AllocRatio["BenchmarkFigure2"]; r != 18 {
		t.Fatalf("Figure2 alloc ratio %v, want 18", r)
	}
	if _, ok := art.AfterAllocs["BenchmarkTraceGen"]; ok {
		t.Fatal("alloc column invented for a benchmark without -benchmem output")
	}
	if art.Aggregate == nil || art.Aggregate.Speedup == 0 {
		t.Fatal("missing shared-Lab aggregate")
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Fatalf("summary missing artifact path: %q", stdout.String())
	}
	if !strings.Contains(stdout.String(), "allocs/op") {
		t.Fatalf("summary missing alloc columns: %q", stdout.String())
	}
}

func TestRunRefusesEmptyAfter(t *testing.T) {
	dir := t.TempDir()
	input := write(t, dir, "garbage.txt", "no benchmarks here\n")
	out := filepath.Join(dir, "BENCH.json")

	err := run([]string{"-input", input, "-out", out}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("empty benchmark set accepted")
	}
	if !strings.Contains(err.Error(), input) || !strings.Contains(err.Error(), "degenerate") {
		t.Fatalf("error does not name the input file: %v", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("degenerate artifact written anyway: %v", statErr)
	}
}

func TestRunRefusesEmptyBefore(t *testing.T) {
	dir := t.TempDir()
	after := write(t, dir, "after.txt", sampleAfter)
	before := write(t, dir, "empty.txt", "PASS\n")
	out := filepath.Join(dir, "BENCH.json")

	err := run([]string{"-input", after, "-before", before, "-out", out}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("empty baseline accepted")
	}
	if !strings.Contains(err.Error(), before) {
		t.Fatalf("error does not name the baseline file: %v", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("artifact written despite empty baseline: %v", statErr)
	}
}

func TestRunRefusesVanishedBaselineBench(t *testing.T) {
	dir := t.TempDir()
	after := write(t, dir, "after.txt", sampleAfter)
	before := write(t, dir, "before.txt",
		sampleBefore+"BenchmarkRenamedAway-8 1 1000 ns/op\n")
	out := filepath.Join(dir, "BENCH.json")

	err := run([]string{"-input", after, "-before", before, "-out", out}, new(bytes.Buffer))
	if err == nil {
		t.Fatal("baseline benchmark missing from the fresh run accepted")
	}
	if !strings.Contains(err.Error(), "BenchmarkRenamedAway") {
		t.Fatalf("error does not name the vanished benchmark: %v", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("artifact written despite vanished baseline bench: %v", statErr)
	}
}

func TestParseKeepsMinimum(t *testing.T) {
	got, err := parse("BenchmarkX-8 1 300 ns/op 500 B/op 9 allocs/op\n" +
		"BenchmarkX-8 1 100 ns/op 400 B/op 7 allocs/op\n" +
		"BenchmarkX-8 1 200 ns/op 450 B/op 8 allocs/op\n")
	if err != nil {
		t.Fatal(err)
	}
	if got.ns["BenchmarkX"] != 100 {
		t.Fatalf("min ns/op %v, want 100", got.ns["BenchmarkX"])
	}
	if got.allocs["BenchmarkX"] != 7 {
		t.Fatalf("min allocs/op %v, want 7", got.allocs["BenchmarkX"])
	}
}

func TestKeepBeforeMissingArtifact(t *testing.T) {
	dir := t.TempDir()
	after := write(t, dir, "after.txt", sampleAfter)
	out := filepath.Join(dir, "BENCH.json")

	// First run on a fresh branch: no existing artifact, -keep-before
	// degrades to an empty baseline instead of failing.
	if err := run([]string{"-input", after, "-keep-before", "-out", out}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	var art Artifact
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Before) != 0 || len(art.Speedup) != 0 {
		t.Fatalf("fresh-branch artifact has before=%d speedup=%d entries", len(art.Before), len(art.Speedup))
	}
}

func TestKeepBeforePreservesAllocBaseline(t *testing.T) {
	dir := t.TempDir()
	after := write(t, dir, "after.txt", sampleAfter)
	before := write(t, dir, "before.txt", sampleBefore)
	out := filepath.Join(dir, "BENCH.json")

	if err := run([]string{"-input", after, "-before", before, "-out", out}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	// A refresh with -keep-before must carry both ns and alloc
	// baselines forward from the artifact on disk.
	if err := run([]string{"-input", after, "-keep-before", "-out", out}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	var art Artifact
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &art); err != nil {
		t.Fatal(err)
	}
	if art.Before["BenchmarkFigure2"] != 240000000 {
		t.Fatalf("ns baseline lost on refresh: %v", art.Before)
	}
	if art.BeforeAllocs["BenchmarkFigure2"] != 162000 {
		t.Fatalf("alloc baseline lost on refresh: %v", art.BeforeAllocs)
	}
	if art.AllocRatio["BenchmarkFigure2"] != 18 {
		t.Fatalf("alloc ratio lost on refresh: %v", art.AllocRatio)
	}
}

func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	oldArt := `{"schema":"locwatch-bench/v2","before":{},"after":{"BenchmarkFigure2":100,"BenchmarkFigure5":200,"BenchmarkGone":50}}`
	newArt := `{"schema":"locwatch-bench/v2","before":{},"after":{"BenchmarkFigure2":150,"BenchmarkFigure5":205}}`
	oldPath := write(t, dir, "old.json", oldArt)
	newPath := write(t, dir, "new.json", newArt)

	var stdout bytes.Buffer
	// Regressions must not fail the run — the CI job is non-gating.
	if err := run([]string{"-compare-old", oldPath, "-compare-new", newPath}, &stdout); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "::warning::benchmark BenchmarkFigure2 regressed 50.0%") {
		t.Fatalf("missing regression annotation:\n%s", out)
	}
	if !strings.Contains(out, "::warning::benchmark BenchmarkGone present in") {
		t.Fatalf("missing vanished-benchmark annotation:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkFigure5 regressed") {
		t.Fatalf("2.5%% change annotated as a regression:\n%s", out)
	}
}

func TestCompareModeClean(t *testing.T) {
	dir := t.TempDir()
	art := `{"schema":"locwatch-bench/v2","before":{},"after":{"BenchmarkFigure2":100}}`
	oldPath := write(t, dir, "old.json", art)
	newPath := write(t, dir, "new.json", art)

	var stdout bytes.Buffer
	if err := run([]string{"-compare-old", oldPath, "-compare-new", newPath}, &stdout); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout.String(), "::warning::") {
		t.Fatalf("clean compare emitted warnings:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "no regressions") {
		t.Fatalf("clean compare missing summary:\n%s", stdout.String())
	}
}

func TestSplitPkgs(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{".", "."},
		{".,./internal/lint/callgraph", ". ./internal/lint/callgraph"},
		{" . , ./pkg ,", ". ./pkg"},
		{"", "."},
		{",,", "."},
	}
	for _, c := range cases {
		if got := strings.Join(splitPkgs(c.in), " "); got != c.want {
			t.Errorf("splitPkgs(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
