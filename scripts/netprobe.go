//go:build ignore

// Netprobe reports whether the Go vulnerability database is reachable:
// it exits 0 when a TCP connection to vuln.go.dev:443 (or the host
// given as the first argument) succeeds within three seconds, and 1
// otherwise. `make vuln` runs it to decide between invoking
// govulncheck and skipping with a notice in offline environments.
package main

import (
	"fmt"
	"net"
	"os"
	"time"
)

func main() {
	host := "vuln.go.dev"
	if len(os.Args) > 1 {
		host = os.Args[1]
	}
	conn, err := net.DialTimeout("tcp", net.JoinHostPort(host, "443"), 3*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netprobe: %s unreachable: %v\n", host, err)
		os.Exit(1)
	}
	_ = conn.Close()
}
