#!/bin/sh
# Smoke test for the locwatchd streaming server: build it, start it on
# a small replayed world, wait for readiness, require a well-formed
# risk snapshot for a replayed user and a non-empty /metrics
# exposition, then verify a graceful SIGTERM drain. CI runs this as
# the locwatchd-smoke job; it is self-contained and needs only go,
# curl and a POSIX shell.
set -eu

ADDR="${ADDR:-127.0.0.1:8931}"
USERS=8
BIN="$(mktemp -d)/locwatchd"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/locwatchd
"$BIN" -addr "$ADDR" -users "$USERS" -days 3 -interval 1m -replay -refs &
PID=$!

# Readiness: /healthz answers once the listener is up.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && { echo "locwatchd did not become ready" >&2; exit 1; }
    sleep 0.2
done

# The replay interleaves all users, so the full population shows up
# quickly; wait until every user has state.
i=0
while :; do
    n=$(curl -fsS "http://$ADDR/v1/users" | grep -o '"u[0-9][0-9][0-9]"' | wc -l)
    [ "$n" -ge "$USERS" ] && break
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "only $n/$USERS users appeared" >&2; exit 1; }
    sleep 0.2
done

risk=$(curl -fsS "http://$ADDR/v1/users/u000/risk")
echo "risk(u000): $risk"
for field in '"poi_total"' '"poi_sensitive"' '"his_bin"' '"deg_anonymity"' '"fixes"'; do
    case "$risk" in
    *"$field"*) ;;
    *) echo "risk snapshot missing $field" >&2; exit 1 ;;
    esac
done

curl -sS "http://$ADDR/v1/users/nobody/risk" -o /dev/null -w '%{http_code}' | grep -q 404 ||
    { echo "unknown user did not 404" >&2; exit 1; }

metrics=$(curl -fsS "http://$ADDR/metrics")
echo "$metrics" | grep -q '^locwatch_stream_fixes_total [1-9]' ||
    { echo "/metrics missing a non-zero locwatch_stream_fixes_total" >&2; exit 1; }

kill -TERM "$PID"
wait "$PID" || { echo "locwatchd did not drain cleanly" >&2; exit 1; }
echo "locwatchd smoke OK"
